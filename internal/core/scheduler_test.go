package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// fakeActuator records actuation calls and can be told to fail.
type fakeActuator struct {
	starts, shrinks, expands, preempts int
	failStart, failShrink, failExpand  bool
	log                                []string
}

func (a *fakeActuator) StartJob(j *Job, replicas int) error {
	if a.failStart {
		return errors.New("start failed")
	}
	a.starts++
	a.log = append(a.log, fmt.Sprintf("start %s %d", j.ID, replicas))
	return nil
}

func (a *fakeActuator) ShrinkJob(j *Job, to int) error {
	if a.failShrink {
		return errors.New("shrink failed")
	}
	a.shrinks++
	a.log = append(a.log, fmt.Sprintf("shrink %s %d", j.ID, to))
	return nil
}

func (a *fakeActuator) ExpandJob(j *Job, to int) error {
	if a.failExpand {
		return errors.New("expand failed")
	}
	a.expands++
	a.log = append(a.log, fmt.Sprintf("expand %s %d", j.ID, to))
	return nil
}

func (a *fakeActuator) PreemptJob(j *Job) error {
	a.preempts++
	a.log = append(a.log, fmt.Sprintf("preempt %s", j.ID))
	return nil
}

// testClock is a manually advanced time source.
type testClock struct{ t time.Time }

func newTestClock() *testClock {
	return &testClock{t: time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newSched(t *testing.T, cfg Config) (*Scheduler, *fakeActuator, *testClock) {
	t.Helper()
	act := &fakeActuator{}
	clk := newTestClock()
	s, err := NewScheduler(cfg, act, clk.now)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	return s, act, clk
}

func job(id string, prio, min, max int) *Job {
	return &Job{ID: id, Priority: prio, MinReplicas: min, MaxReplicas: max}
}

func TestNewSchedulerValidation(t *testing.T) {
	act := &fakeActuator{}
	clk := newTestClock()
	if _, err := NewScheduler(Config{Capacity: 0}, act, clk.now); err == nil {
		t.Error("accepted zero capacity")
	}
	if _, err := NewScheduler(Config{Capacity: 4}, nil, clk.now); err == nil {
		t.Error("accepted nil actuator")
	}
	if _, err := NewScheduler(Config{Capacity: 4}, act, nil); err == nil {
		t.Error("accepted nil clock")
	}
}

func TestSubmitValidation(t *testing.T) {
	s, _, _ := newSched(t, Config{Policy: Elastic, Capacity: 8})
	if err := s.Submit(job("", 1, 1, 2)); err == nil {
		t.Error("accepted empty ID")
	}
	if err := s.Submit(job("a", 1, 0, 2)); err == nil {
		t.Error("accepted min=0")
	}
	if err := s.Submit(job("a", 1, 4, 2)); err == nil {
		t.Error("accepted max < min")
	}
}

func TestElasticStartsAtMaxWhenRoom(t *testing.T) {
	s, act, _ := newSched(t, Config{Policy: Elastic, Capacity: 64})
	j := job("a", 3, 4, 16)
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	if j.State != StateRunning || j.Replicas != 16 {
		t.Fatalf("job = %v replicas %d, want Running 16", j.State, j.Replicas)
	}
	if s.FreeSlots() != 48 {
		t.Errorf("free = %d, want 48", s.FreeSlots())
	}
	if act.starts != 1 {
		t.Errorf("starts = %d", act.starts)
	}
}

func TestElasticStartsWithAvailableWhenAboveMin(t *testing.T) {
	s, _, _ := newSched(t, Config{Policy: Elastic, Capacity: 20})
	a := job("a", 1, 4, 16)
	if err := s.Submit(a); err != nil {
		t.Fatal(err)
	}
	// 4 free; new job needs min 4, max 16: starts at 4 without shrinking
	// the running job (paper §3.2.1: avoid the shrink call when min fits).
	b := job("b", 5, 4, 16)
	if err := s.Submit(b); err != nil {
		t.Fatal(err)
	}
	if b.State != StateRunning || b.Replicas != 4 {
		t.Fatalf("b = %v replicas %d, want Running 4", b.State, b.Replicas)
	}
	if a.Replicas != 16 {
		t.Errorf("a was rescaled to %d; shrink should have been avoided", a.Replicas)
	}
}

func TestElasticShrinksLowerPriorityWhenMinDoesNotFit(t *testing.T) {
	s, act, clk := newSched(t, Config{Policy: Elastic, Capacity: 16, RescaleGap: time.Minute})
	a := job("low", 1, 2, 16)
	if err := s.Submit(a); err != nil {
		t.Fatal(err)
	}
	if a.Replicas != 16 {
		t.Fatalf("setup: a has %d replicas", a.Replicas)
	}
	clk.advance(2 * time.Minute) // outside a's rescale gap
	b := job("high", 5, 4, 8)
	if err := s.Submit(b); err != nil {
		t.Fatal(err)
	}
	if b.State != StateRunning {
		t.Fatalf("high-priority job not started: %v", b.State)
	}
	if act.shrinks != 1 {
		t.Errorf("shrinks = %d, want 1", act.shrinks)
	}
	// Figure 2 frees up to maxToFree: b wants max 8, so a shrinks to 16-8=8.
	if a.Replicas != 8 {
		t.Errorf("a replicas = %d, want 8", a.Replicas)
	}
	if b.Replicas != 8 {
		t.Errorf("b replicas = %d, want 8", b.Replicas)
	}
}

func TestElasticRespectsRescaleGap(t *testing.T) {
	s, act, clk := newSched(t, Config{Policy: Elastic, Capacity: 16, RescaleGap: 10 * time.Minute})
	a := job("low", 1, 2, 16)
	if err := s.Submit(a); err != nil {
		t.Fatal(err)
	}
	clk.advance(time.Minute) // still inside the gap
	b := job("high", 5, 4, 8)
	if err := s.Submit(b); err != nil {
		t.Fatal(err)
	}
	if b.State != StateQueued {
		t.Fatalf("b should be queued while a is inside its gap, got %v", b.State)
	}
	if act.shrinks != 0 {
		t.Errorf("shrinks = %d, want 0", act.shrinks)
	}
}

func TestElasticNeverShrinksHigherPriority(t *testing.T) {
	s, act, clk := newSched(t, Config{Policy: Elastic, Capacity: 16})
	a := job("high", 5, 2, 16)
	if err := s.Submit(a); err != nil {
		t.Fatal(err)
	}
	clk.advance(time.Hour)
	b := job("low", 1, 4, 8)
	if err := s.Submit(b); err != nil {
		t.Fatal(err)
	}
	if b.State != StateQueued {
		t.Fatalf("low-priority job should queue, got %v", b.State)
	}
	if act.shrinks != 0 {
		t.Error("shrank a higher-priority job")
	}
}

func TestElasticEqualPriorityCanBeShrunk(t *testing.T) {
	// The pseudocode breaks only on strictly higher priority, so equal
	// priority jobs may be shrunk for a newer arrival.
	s, act, clk := newSched(t, Config{Policy: Elastic, Capacity: 16})
	a := job("first", 3, 2, 16)
	if err := s.Submit(a); err != nil {
		t.Fatal(err)
	}
	clk.advance(time.Minute)
	b := job("second", 3, 4, 8)
	if err := s.Submit(b); err != nil {
		t.Fatal(err)
	}
	if b.State != StateRunning {
		t.Fatalf("b = %v", b.State)
	}
	if act.shrinks != 1 {
		t.Errorf("shrinks = %d", act.shrinks)
	}
}

func TestElasticQueuesWhenShrinkingCannotHelp(t *testing.T) {
	s, _, clk := newSched(t, Config{Policy: Elastic, Capacity: 8})
	a := job("a", 1, 6, 8) // min 6: can only free 2
	if err := s.Submit(a); err != nil {
		t.Fatal(err)
	}
	clk.advance(time.Hour)
	b := job("b", 5, 4, 8) // needs 4; shrinking a frees at most 2
	if err := s.Submit(b); err != nil {
		t.Fatal(err)
	}
	if b.State != StateQueued {
		t.Fatalf("b = %v, want Queued", b.State)
	}
	if a.Replicas != 8 {
		t.Errorf("a was shrunk to %d despite infeasibility", a.Replicas)
	}
}

func TestCompletionExpandsRunningByPriority(t *testing.T) {
	s, act, clk := newSched(t, Config{Policy: Elastic, Capacity: 32})
	a := job("a", 5, 4, 16)
	b := job("b", 3, 4, 16)
	c := job("c", 1, 4, 16)
	for _, j := range []*Job{a, b, c} {
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	// a:16, b:16 won't fit... capacity 32: a=16, b=16, c queued.
	if c.State != StateQueued {
		t.Fatalf("c = %v, want Queued", c.State)
	}
	clk.advance(time.Hour)
	s.OnJobComplete(a)
	if a.State != StateCompleted {
		t.Fatalf("a = %v", a.State)
	}
	// 16 slots free: b is already at max (16), so c starts at 16.
	if c.State != StateRunning || c.Replicas != 16 {
		t.Errorf("c = %v replicas %d, want Running 16", c.State, c.Replicas)
	}
	_ = act
}

func TestCompletionExpandsBelowMaxJobFirst(t *testing.T) {
	s, act, clk := newSched(t, Config{Policy: Elastic, Capacity: 20})
	a := job("a", 5, 4, 16)
	if err := s.Submit(a); err != nil {
		t.Fatal(err)
	}
	b := job("b", 3, 4, 16) // 4 free -> starts at 4
	if err := s.Submit(b); err != nil {
		t.Fatal(err)
	}
	if b.Replicas != 4 {
		t.Fatalf("b replicas = %d", b.Replicas)
	}
	clk.advance(time.Hour)
	s.OnJobComplete(a) // frees 16
	// b expands to its max (16).
	if b.Replicas != 16 {
		t.Errorf("b replicas after completion = %d, want 16", b.Replicas)
	}
	if act.expands != 1 {
		t.Errorf("expands = %d, want 1", act.expands)
	}
}

func TestCompletionRespectsGapOnExpand(t *testing.T) {
	s, act, _ := newSched(t, Config{Policy: Elastic, Capacity: 20, RescaleGap: time.Hour})
	a := job("a", 5, 4, 16)
	b := job("b", 3, 4, 16)
	if err := s.Submit(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(b); err != nil {
		t.Fatal(err)
	}
	s.OnJobComplete(a) // b started 0s ago: inside gap, cannot expand
	if b.Replicas != 4 {
		t.Errorf("b expanded to %d inside its gap", b.Replicas)
	}
	if act.expands != 0 {
		t.Errorf("expands = %d", act.expands)
	}
}

func TestMoldableNeverRescales(t *testing.T) {
	s, act, clk := newSched(t, Config{Policy: Moldable, Capacity: 20, RescaleGap: time.Second})
	a := job("a", 1, 4, 16)
	if err := s.Submit(a); err != nil {
		t.Fatal(err)
	}
	if a.Replicas != 16 {
		t.Fatalf("moldable a = %d, want 16", a.Replicas)
	}
	clk.advance(24 * time.Hour)
	// Higher priority arrives; moldable may start it in the 4 free slots
	// but must not shrink a.
	b := job("b", 5, 4, 16)
	if err := s.Submit(b); err != nil {
		t.Fatal(err)
	}
	if b.State != StateRunning || b.Replicas != 4 {
		t.Fatalf("b = %v %d", b.State, b.Replicas)
	}
	clk.advance(24 * time.Hour)
	s.OnJobComplete(a)
	// 16 free, b below max — but moldable never expands.
	if b.Replicas != 4 {
		t.Errorf("moldable expanded b to %d", b.Replicas)
	}
	if act.shrinks != 0 || act.expands != 0 {
		t.Errorf("moldable rescaled: %d shrinks, %d expands", act.shrinks, act.expands)
	}
	// But queued jobs still start.
	c := job("c", 1, 8, 16)
	if err := s.Submit(c); err != nil {
		t.Fatal(err)
	}
	if c.State != StateRunning {
		t.Errorf("c = %v", c.State)
	}
}

func TestRigidMinUsesMinReplicas(t *testing.T) {
	s, _, _ := newSched(t, Config{Policy: RigidMin, Capacity: 64})
	j := job("a", 1, 4, 32)
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	if j.Replicas != 4 {
		t.Errorf("rigid-min replicas = %d, want 4", j.Replicas)
	}
}

func TestRigidMaxUsesMaxReplicas(t *testing.T) {
	s, _, clk := newSched(t, Config{Policy: RigidMax, Capacity: 64})
	j := job("a", 1, 4, 32)
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	if j.Replicas != 32 {
		t.Errorf("rigid-max replicas = %d, want 32", j.Replicas)
	}
	// Second job of max 32 fits exactly.
	k := job("b", 1, 4, 32)
	if err := s.Submit(k); err != nil {
		t.Fatal(err)
	}
	if k.Replicas != 32 {
		t.Errorf("k = %d", k.Replicas)
	}
	// Third queues: rigid jobs never shrink.
	clk.advance(time.Hour)
	l := job("c", 9, 4, 32)
	if err := s.Submit(l); err != nil {
		t.Fatal(err)
	}
	if l.State != StateQueued {
		t.Errorf("l = %v", l.State)
	}
}

func TestJobOverheadSlotsMatchesPseudocode(t *testing.T) {
	// With overhead 1 (the literal "freeSlots - 1"), a job with min ==
	// capacity can never start.
	s, _, _ := newSched(t, Config{Policy: Elastic, Capacity: 8, JobOverheadSlots: 1})
	j := job("a", 1, 8, 8)
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	if j.State != StateQueued {
		t.Errorf("j = %v, want Queued (8 workers + 1 launcher > 8 slots)", j.State)
	}
	k := job("b", 1, 4, 8)
	if err := s.Submit(k); err != nil {
		t.Fatal(err)
	}
	if k.State != StateRunning || k.Replicas != 7 {
		t.Errorf("k = %v %d, want Running 7 (one slot for launcher)", k.State, k.Replicas)
	}
	if s.FreeSlots() != 0 {
		t.Errorf("free = %d", s.FreeSlots())
	}
}

func TestPriorityOrderingTieBreak(t *testing.T) {
	s, _, clk := newSched(t, Config{Policy: Elastic, Capacity: 8})
	// Stamp the cached comparison keys the way Submit does: sortJobs
	// orders on prio/submitNs, not on the raw exported fields.
	mk := func(id string, prio int, at time.Time) *Job {
		return &Job{ID: id, Priority: prio, SubmitTime: at,
			prio: float64(prio), submitNs: at.UnixNano()}
	}
	early := mk("early", 3, clk.t)
	late := mk("late", 3, clk.t.Add(time.Minute))
	big := mk("z-big", 5, clk.t.Add(time.Hour))
	jobs := []*Job{late, big, early}
	s.sortJobs(jobs)
	if jobs[0] != big || jobs[1] != early || jobs[2] != late {
		t.Errorf("order = %s %s %s", jobs[0].ID, jobs[1].ID, jobs[2].ID)
	}
}

func TestAgingPromotesStarvedJob(t *testing.T) {
	// Two queued jobs; the lower-priority one is much older. With aging it
	// should start first once capacity frees up.
	s, _, clk := newSched(t, Config{Policy: Elastic, Capacity: 8, AgingRate: 0.01})
	blocker := job("blocker", 9, 8, 8)
	if err := s.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	old := job("old", 1, 8, 8)
	if err := s.Submit(old); err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Hour) // old gains 0.01*7200 = 72 priority units
	fresh := job("fresh", 5, 8, 8)
	if err := s.Submit(fresh); err != nil {
		t.Fatal(err)
	}
	s.OnJobComplete(blocker)
	if old.State != StateRunning {
		t.Errorf("aged job not started: %v", old.State)
	}
	if fresh.State != StateQueued {
		t.Errorf("fresh job jumped the aged one: %v", fresh.State)
	}
}

func TestPreemptionMakesRoom(t *testing.T) {
	s, act, clk := newSched(t, Config{Policy: Elastic, Capacity: 8, EnablePreemption: true})
	low := job("low", 1, 8, 8) // rigid shape: cannot shrink
	if err := s.Submit(low); err != nil {
		t.Fatal(err)
	}
	clk.advance(time.Hour)
	high := job("high", 5, 8, 8)
	if err := s.Submit(high); err != nil {
		t.Fatal(err)
	}
	if high.State != StateRunning {
		t.Fatalf("high = %v, want Running via preemption", high.State)
	}
	if low.State != StatePreempted {
		t.Fatalf("low = %v, want Preempted", low.State)
	}
	if act.preempts != 1 {
		t.Errorf("preempts = %d", act.preempts)
	}
	// When high completes, the preempted job restarts from its checkpoint.
	clk.advance(time.Hour)
	s.OnJobComplete(high)
	if low.State != StateRunning {
		t.Errorf("preempted job not resumed: %v", low.State)
	}
}

func TestPreemptionDisabledByDefault(t *testing.T) {
	s, act, clk := newSched(t, Config{Policy: Elastic, Capacity: 8})
	low := job("low", 1, 8, 8)
	if err := s.Submit(low); err != nil {
		t.Fatal(err)
	}
	clk.advance(time.Hour)
	high := job("high", 5, 8, 8)
	if err := s.Submit(high); err != nil {
		t.Fatal(err)
	}
	if high.State != StateQueued || act.preempts != 0 {
		t.Errorf("high = %v, preempts = %d", high.State, act.preempts)
	}
}

func TestCostBenefitDeclinesNearlyDoneJob(t *testing.T) {
	progress := map[string]float64{"low": 0.95}
	s, act, clk := newSched(t, Config{
		Policy: Elastic, Capacity: 16,
		CostBenefit: &CostBenefit{
			Progress:             func(j *Job) float64 { return progress[j.ID] },
			MinRemainingFraction: 0.10,
		},
	})
	low := job("low", 1, 2, 16)
	if err := s.Submit(low); err != nil {
		t.Fatal(err)
	}
	clk.advance(time.Hour)
	high := job("high", 5, 4, 8)
	if err := s.Submit(high); err != nil {
		t.Fatal(err)
	}
	// The shrink is declined (job 95% done), so high queues.
	if act.shrinks != 0 {
		t.Errorf("shrank a nearly-done job")
	}
	if high.State != StateQueued {
		t.Errorf("high = %v", high.State)
	}
}

func TestCostBenefitDeclinesTinyExpand(t *testing.T) {
	s, act, clk := newSched(t, Config{
		Policy: Elastic, Capacity: 17,
		CostBenefit: &CostBenefit{MinExpandGain: 4},
	})
	a := job("a", 5, 4, 16)
	b := job("b", 3, 4, 16)
	if err := s.Submit(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(b); err != nil { // 1 free slot left
		t.Fatal(err)
	}
	clk.advance(time.Hour)
	// Complete nothing; kick redistribution: b could grow by 1 < 4 gain.
	s.Kick()
	if act.expands != 0 {
		t.Errorf("expanded by less than MinExpandGain")
	}
}

func TestActuatorFailureFallsBackToQueue(t *testing.T) {
	s, act, _ := newSched(t, Config{Policy: Elastic, Capacity: 16})
	act.failStart = true
	j := job("a", 1, 4, 8)
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	if j.State != StateQueued {
		t.Errorf("j = %v, want Queued after failed start", j.State)
	}
	if s.FreeSlots() != 16 {
		t.Errorf("free = %d after failed start", s.FreeSlots())
	}
	act.failStart = false
	s.Kick()
	if j.State != StateRunning {
		t.Errorf("j = %v after Kick, want Running", j.State)
	}
}

func TestShrinkFailureLeavesAccountingConsistent(t *testing.T) {
	s, act, clk := newSched(t, Config{Policy: Elastic, Capacity: 16})
	a := job("a", 1, 2, 16)
	if err := s.Submit(a); err != nil {
		t.Fatal(err)
	}
	clk.advance(time.Hour)
	act.failShrink = true
	b := job("b", 5, 4, 8)
	if err := s.Submit(b); err != nil {
		t.Fatal(err)
	}
	if b.State != StateQueued {
		t.Errorf("b = %v", b.State)
	}
	if a.Replicas != 16 || s.FreeSlots() != 0 {
		t.Errorf("accounting broken: a=%d free=%d", a.Replicas, s.FreeSlots())
	}
}

func TestOnJobCompleteIgnoresNonRunning(t *testing.T) {
	s, _, _ := newSched(t, Config{Policy: Elastic, Capacity: 8})
	j := job("a", 1, 2, 4)
	s.OnJobComplete(j) // never submitted: must be a no-op
	if s.FreeSlots() != 8 {
		t.Errorf("free = %d", s.FreeSlots())
	}
	if j.State == StateCompleted {
		t.Error("queued job marked completed")
	}
}

func TestMetricsTimestamps(t *testing.T) {
	s, _, clk := newSched(t, Config{Policy: Elastic, Capacity: 8})
	j := job("a", 2, 2, 4)
	submitAt := clk.t
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	clk.advance(90 * time.Second)
	s.OnJobComplete(j)
	if j.SubmitTime != submitAt {
		t.Errorf("SubmitTime = %v", j.SubmitTime)
	}
	if j.ResponseTime() != 0 {
		t.Errorf("ResponseTime = %v, want 0 (started immediately)", j.ResponseTime())
	}
	if j.CompletionTime() != 90*time.Second {
		t.Errorf("CompletionTime = %v", j.CompletionTime())
	}
}

func TestPolicyStrings(t *testing.T) {
	want := map[Policy]string{
		Elastic: "elastic", Moldable: "moldable",
		RigidMin: "min_replicas", RigidMax: "max_replicas",
	}
	for p, w := range want {
		if p.String() != w {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), w)
		}
	}
	if Policy(42).String() == "" {
		t.Error("unknown policy empty string")
	}
	if len(AllPolicies()) != 4 {
		t.Error("AllPolicies wrong length")
	}
	for _, st := range []State{StateQueued, StateRunning, StateCompleted, StatePreempted, State(9)} {
		if st.String() == "" {
			t.Errorf("State(%d) empty string", st)
		}
	}
}

// Invariant: free slots + allocated slots == capacity, and 0 <= free <=
// capacity, under an arbitrary stream of submissions, completions, and clock
// advances, for every policy.
func TestRandomizedSlotAccountingInvariant(t *testing.T) {
	for _, policy := range AllPolicies() {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 20; trial++ {
				s, _, clk := newSched(t, Config{
					Policy: policy, Capacity: 64,
					RescaleGap:       time.Duration(rng.Intn(300)) * time.Second,
					JobOverheadSlots: rng.Intn(2),
				})
				var live []*Job
				for step := 0; step < 100; step++ {
					switch {
					case rng.Float64() < 0.5 || len(live) == 0:
						minR := 1 + rng.Intn(8)
						maxR := minR + rng.Intn(24)
						j := job(fmt.Sprintf("t%d-j%d", trial, step), rng.Intn(5)+1, minR, maxR)
						if err := s.Submit(j); err != nil {
							t.Fatal(err)
						}
						live = append(live, j)
					default:
						i := rng.Intn(len(live))
						j := live[i]
						if j.State == StateRunning {
							s.OnJobComplete(j)
							live = append(live[:i], live[i+1:]...)
						}
					}
					clk.advance(time.Duration(rng.Intn(120)) * time.Second)

					// Check invariants.
					used := 0
					for _, j := range s.Running() {
						used += j.Replicas + s.cfg.JobOverheadSlots
						if j.Replicas < 1 {
							t.Fatalf("running job %s with %d replicas", j.ID, j.Replicas)
						}
						minR, maxR := s.bounds(j)
						if j.Replicas < minR || j.Replicas > maxR {
							t.Fatalf("job %s at %d outside [%d,%d]", j.ID, j.Replicas, minR, maxR)
						}
					}
					if used+s.FreeSlots() != 64 {
						t.Fatalf("slot leak: used %d + free %d != 64", used, s.FreeSlots())
					}
					if s.FreeSlots() < 0 {
						t.Fatalf("negative free slots: %d", s.FreeSlots())
					}
					for _, j := range s.Queued() {
						if j.Replicas != 0 {
							t.Fatalf("queued job %s holds %d replicas", j.ID, j.Replicas)
						}
					}
				}
			}
		})
	}
}

// Regression test for the indexed-queue backlog gate: with JobOverheadSlots
// set, a queued job whose minimum exactly fits the freed slots must start on
// the completion's redistribution pass (the gate must not double-count the
// overhead already folded into the job's slot requirement).
func TestRedistributeStartsFittingJobWithOverhead(t *testing.T) {
	s, _, clk := newSched(t, Config{Policy: Elastic, Capacity: 8, JobOverheadSlots: 1})
	a := job("a", 5, 2, 2) // 2 workers + 1 overhead = 3 slots
	if err := s.Submit(a); err != nil {
		t.Fatal(err)
	}
	b := job("b", 4, 4, 4) // 4 + 1 = 5 slots: fits alongside a
	if err := s.Submit(b); err != nil {
		t.Fatal(err)
	}
	if a.State != StateRunning || b.State != StateRunning || s.FreeSlots() != 0 {
		t.Fatalf("setup: a=%v b=%v free=%d", a.State, b.State, s.FreeSlots())
	}
	c := job("c", 1, 2, 2) // needs 3 slots; queues behind the full cluster
	if err := s.Submit(c); err != nil {
		t.Fatal(err)
	}
	if c.State != StateQueued {
		t.Fatalf("c = %v, want Queued", c.State)
	}
	clk.advance(time.Hour)
	s.OnJobComplete(a) // frees exactly the 3 slots c needs
	if c.State != StateRunning || c.Replicas != 2 {
		t.Errorf("c = %v replicas %d, want Running 2 (gate double-counted overhead?)", c.State, c.Replicas)
	}
}
