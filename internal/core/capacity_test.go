package core

import (
	"math/rand"
	"testing"
	"time"
)

func TestSetCapacityValidation(t *testing.T) {
	s, _, _ := newSched(t, Config{Policy: Elastic, Capacity: 8})
	if err := s.SetCapacity(0); err == nil {
		t.Error("accepted capacity 0")
	}
	if err := s.SetCapacity(8); err != nil {
		t.Errorf("no-op SetCapacity: %v", err)
	}
	if got := s.Capacity(); got != 8 {
		t.Errorf("Capacity() = %d, want 8", got)
	}
}

func TestSetCapacityGrowthRedistributes(t *testing.T) {
	s, _, _ := newSched(t, Config{Policy: Elastic, Capacity: 16})
	j := job("a", 3, 4, 32)
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	if j.Replicas != 16 {
		t.Fatalf("replicas = %d, want 16", j.Replicas)
	}
	if err := s.SetCapacity(32); err != nil {
		t.Fatal(err)
	}
	if j.Replicas != 32 {
		t.Errorf("after growth replicas = %d, want 32 (redistributed)", j.Replicas)
	}
	if s.FreeSlots() != 0 || s.Capacity() != 32 {
		t.Errorf("free=%d capacity=%d, want 0/32", s.FreeSlots(), s.Capacity())
	}
}

func TestSetCapacityGrowthStartsQueuedJob(t *testing.T) {
	s, _, _ := newSched(t, Config{Policy: Elastic, Capacity: 8})
	a := job("a", 3, 8, 8)
	b := job("b", 1, 8, 8)
	if err := s.Submit(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(b); err != nil {
		t.Fatal(err)
	}
	if b.State != StateQueued {
		t.Fatalf("b state = %v, want Queued", b.State)
	}
	if err := s.SetCapacity(16); err != nil {
		t.Fatal(err)
	}
	if b.State != StateRunning || b.Replicas != 8 {
		t.Errorf("b = %v replicas %d, want Running 8", b.State, b.Replicas)
	}
}

func TestSetCapacityShrinkConsumesFreeSlotsFirst(t *testing.T) {
	s, act, _ := newSched(t, Config{Policy: Elastic, Capacity: 32})
	j := job("a", 3, 4, 16)
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	// 16 free slots cover the loss; no job is touched.
	if err := s.SetCapacity(20); err != nil {
		t.Fatal(err)
	}
	if act.shrinks != 0 || act.preempts != 0 {
		t.Errorf("shrinks=%d preempts=%d, want 0/0 (free slots covered the drop)", act.shrinks, act.preempts)
	}
	if s.FreeSlots() != 4 || j.Replicas != 16 {
		t.Errorf("free=%d replicas=%d, want 4/16", s.FreeSlots(), j.Replicas)
	}
	st := s.CapacityStats()
	if st.ForcedShrinks != 0 || st.Requeues != 0 {
		t.Errorf("stats = %+v, want zero", st)
	}
}

func TestSetCapacityForcedShrinkTakesLowestPriorityFirst(t *testing.T) {
	s, _, _ := newSched(t, Config{Policy: Elastic, Capacity: 32})
	hi := job("hi", 5, 4, 16)
	lo := job("lo", 1, 4, 16)
	if err := s.Submit(hi); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(lo); err != nil {
		t.Fatal(err)
	}
	if hi.Replicas != 16 || lo.Replicas != 16 {
		t.Fatalf("replicas hi=%d lo=%d, want 16/16", hi.Replicas, lo.Replicas)
	}
	// Drop 8 slots: only the low-priority job should give them up.
	if err := s.SetCapacity(24); err != nil {
		t.Fatal(err)
	}
	if lo.Replicas != 8 || hi.Replicas != 16 {
		t.Errorf("replicas lo=%d hi=%d, want 8/16 (lowest priority shrinks first)", lo.Replicas, hi.Replicas)
	}
	st := s.CapacityStats()
	if st.ForcedShrinks != 1 || st.Requeues != 0 || st.SlotsReclaimed != 8 {
		t.Errorf("stats = %+v, want 1 forced shrink of 8 slots", st)
	}
}

func TestSetCapacityBypassesRescaleGap(t *testing.T) {
	s, _, _ := newSched(t, Config{Policy: Elastic, Capacity: 16, RescaleGap: time.Hour})
	j := job("a", 3, 4, 16)
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	// The job just started, deep inside its rescale gap — a capacity loss
	// shrinks it anyway (the hardware is gone).
	if err := s.SetCapacity(8); err != nil {
		t.Fatal(err)
	}
	if j.Replicas != 8 {
		t.Errorf("replicas = %d, want 8 despite the rescale gap", j.Replicas)
	}
}

func TestSetCapacityRequeuesWhenShrinkCannotAbsorb(t *testing.T) {
	s, act, _ := newSched(t, Config{Policy: Elastic, Capacity: 16})
	hi := job("hi", 5, 8, 8)
	lo := job("lo", 1, 8, 8)
	if err := s.Submit(hi); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(lo); err != nil {
		t.Fatal(err)
	}
	// Neither job can shrink (min == max). Dropping to 8 must checkpoint-
	// requeue the low-priority job, even though EnablePreemption is off —
	// infrastructure loss is not a policy choice.
	if err := s.SetCapacity(8); err != nil {
		t.Fatal(err)
	}
	if lo.State != StatePreempted || lo.Replicas != 0 {
		t.Errorf("lo = %v replicas %d, want Preempted 0", lo.State, lo.Replicas)
	}
	if hi.State != StateRunning || hi.Replicas != 8 {
		t.Errorf("hi = %v replicas %d, want Running 8", hi.State, hi.Replicas)
	}
	if act.preempts != 1 {
		t.Errorf("preempts = %d, want 1", act.preempts)
	}
	if s.NumQueued() != 1 {
		t.Errorf("queued = %d, want 1", s.NumQueued())
	}
	st := s.CapacityStats()
	if st.Requeues != 1 {
		t.Errorf("stats = %+v, want 1 requeue", st)
	}

	// Restoring the capacity restarts the requeued job.
	if err := s.SetCapacity(16); err != nil {
		t.Fatal(err)
	}
	if lo.State != StateRunning || lo.Replicas != 8 {
		t.Errorf("after restore lo = %v replicas %d, want Running 8", lo.State, lo.Replicas)
	}
}

func TestPreemptFreesRequestedSlots(t *testing.T) {
	s, _, _ := newSched(t, Config{Policy: Elastic, Capacity: 32})
	hi := job("hi", 5, 4, 16)
	lo := job("lo", 1, 4, 16)
	if err := s.Submit(hi); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(lo); err != nil {
		t.Fatal(err)
	}
	freed := s.Preempt(8)
	if freed != 8 {
		t.Fatalf("Preempt(8) = %d, want 8", freed)
	}
	if s.FreeSlots() < 8 {
		t.Errorf("free = %d, want >= 8", s.FreeSlots())
	}
	if lo.Replicas != 8 || hi.Replicas != 16 {
		t.Errorf("replicas lo=%d hi=%d, want 8/16", lo.Replicas, hi.Replicas)
	}
	if got := s.Preempt(0); got != 0 {
		t.Errorf("Preempt(0) = %d, want 0", got)
	}
}

// checkInvariant asserts the slot-accounting invariant the availability
// subsystem guarantees: allocated worker slots (plus per-job overhead) and
// free slots exactly cover the current capacity, and nothing is negative.
func checkInvariant(t *testing.T, s *Scheduler, overhead int, context string) {
	t.Helper()
	used := 0
	for _, j := range s.Running() {
		used += j.Replicas + overhead
		if j.Replicas < 1 {
			t.Fatalf("%s: running job %s with %d replicas", context, j.ID, j.Replicas)
		}
	}
	if used+s.FreeSlots() != s.Capacity() {
		t.Fatalf("%s: used %d + free %d != capacity %d", context, used, s.FreeSlots(), s.Capacity())
	}
	if s.FreeSlots() < 0 {
		t.Fatalf("%s: negative free slots %d", context, s.FreeSlots())
	}
}

// TestRandomizedCapacityInvariant drives the scheduler through random
// submissions, completions, and capacity events and checks after every
// operation that running replicas + free slots never exceed the current
// capacity — the property test of the availability subsystem.
func TestRandomizedCapacityInvariant(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		overhead := int(seed % 2)
		s, _, clk := newSched(t, Config{Policy: Elastic, Capacity: 64, JobOverheadSlots: overhead})
		next := 0
		for op := 0; op < 400; op++ {
			clk.advance(time.Duration(rng.Intn(120)) * time.Second)
			switch r := rng.Float64(); {
			case r < 0.45:
				minR := 1 + rng.Intn(8)
				j := job("j", 1+rng.Intn(5), minR, minR+rng.Intn(16))
				j.ID = j.ID + "-" + string(rune('a'+seed)) + "-" + itoa(next)
				next++
				if err := s.Submit(j); err != nil {
					t.Fatal(err)
				}
			case r < 0.65:
				if run := s.Running(); len(run) > 0 {
					s.OnJobComplete(run[rng.Intn(len(run))])
				}
			case r < 0.85:
				if err := s.SetCapacity(1 + rng.Intn(96)); err != nil {
					t.Fatalf("seed %d op %d: %v", seed, op, err)
				}
			default:
				s.Preempt(1 + rng.Intn(16))
			}
			checkInvariant(t, s, overhead, "op")
		}
	}
}

// TestPreemptNeverTakesHigherPriorityVictimFirst pins the victim-selection
// property: a reclaim never checkpoint-requeues a job while some strictly
// lower-priority running job could still shrink — and any requeued job has
// a priority no higher than every job left running above its minimum.
func TestPreemptNeverTakesHigherPriorityVictimFirst(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		s, _, _ := newSched(t, Config{Policy: Elastic, Capacity: 128})
		jobs := make([]*Job, 0, 8)
		for i := 0; i < 4+rng.Intn(5); i++ {
			minR := 2 + rng.Intn(6)
			j := job("p"+itoa(i), 1+rng.Intn(5), minR, minR+rng.Intn(12))
			if err := s.Submit(j); err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
		s.Preempt(8 + rng.Intn(96))

		for _, p := range jobs {
			if p.State != StatePreempted {
				continue
			}
			for _, r := range jobs {
				if r.State != StateRunning {
					continue
				}
				minR := r.MinReplicas
				if r.Replicas > minR && r.Priority < p.Priority {
					t.Fatalf("seed %d: requeued prio-%d job %s while prio-%d job %s still holds %d > min %d",
						seed, p.Priority, p.ID, r.Priority, r.ID, r.Replicas, minR)
				}
			}
		}
	}
}

// itoa is a minimal int formatter for test IDs (keeps fmt out of hot loops).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
