package core

import (
	"fmt"
	"time"
)

// DecisionKind classifies a scheduling decision.
type DecisionKind int

// Decision kinds recorded by the scheduler.
const (
	DecisionStart DecisionKind = iota
	DecisionShrink
	DecisionExpand
	DecisionEnqueue
	DecisionComplete
	DecisionPreempt
	DecisionCapacity
	DecisionWithdraw
)

// String returns the decision kind's log label.
func (k DecisionKind) String() string {
	switch k {
	case DecisionStart:
		return "start"
	case DecisionShrink:
		return "shrink"
	case DecisionExpand:
		return "expand"
	case DecisionEnqueue:
		return "enqueue"
	case DecisionComplete:
		return "complete"
	case DecisionPreempt:
		return "preempt"
	case DecisionCapacity:
		return "capacity"
	case DecisionWithdraw:
		return "withdraw"
	}
	return fmt.Sprintf("DecisionKind(%d)", int(k))
}

// Decision is one entry in the scheduler's decision log — the audit trail
// of every policy action, with the slot accounting at the time it was made.
type Decision struct {
	At        time.Time
	Kind      DecisionKind
	JobID     string
	Replicas  int // allocation after the decision (0 for enqueue/complete; the new total for capacity)
	FreeSlots int // free slots after the decision
}

// String formats a decision as one log line.
func (d Decision) String() string {
	return fmt.Sprintf("%s %-8s %-12s replicas=%-3d free=%d",
		d.At.Format("15:04:05"), d.Kind, d.JobID, d.Replicas, d.FreeSlots)
}

// maxLogEntries bounds the in-memory decision log; older entries are
// discarded (the operator runs for days).
const maxLogEntries = 100_000

// logRing is a bounded ring buffer of decisions, mirroring the charm msgq
// ring: the backing array grows until maxLogEntries and is then reused
// in place, so steady-state logging overwrites the oldest slot instead of
// copying or allocating per entry.
type logRing struct {
	buf  []Decision
	head int // index of the oldest entry once the ring is full
	n    int // live entries
}

// add appends one entry, overwriting the oldest at the cap.
func (r *logRing) add(d Decision) {
	if len(r.buf) < maxLogEntries {
		r.buf = append(r.buf, d)
		r.n = len(r.buf)
		return
	}
	r.buf[r.head] = d
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
}

// snapshot returns the entries oldest-first as a fresh slice.
func (r *logRing) snapshot() []Decision {
	if r.n == 0 {
		return nil
	}
	out := make([]Decision, 0, r.n)
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}

// record appends a per-job decision to the log.
func (s *Scheduler) record(kind DecisionKind, j *Job) {
	if !s.cfg.EnableLog {
		return
	}
	s.log.add(Decision{
		At: s.tnow, Kind: kind, JobID: j.ID, Replicas: j.Replicas, FreeSlots: s.free,
	})
}

// recordCapacity logs a capacity change (EnableLog only).
func (s *Scheduler) recordCapacity(n int) {
	if !s.cfg.EnableLog {
		return
	}
	s.log.add(Decision{
		At: s.tnow, Kind: DecisionCapacity, JobID: "", Replicas: n, FreeSlots: s.free,
	})
}

// Log returns a copy of the decision log, oldest entry first (empty unless
// Config.EnableLog).
func (s *Scheduler) Log() []Decision {
	return s.log.snapshot()
}

// MergeLogs concatenates per-segment decision logs (each oldest-first) in
// segment order and applies the ring-buffer bound, keeping the newest
// maxLogEntries entries — exactly the log one scheduler would hold had it
// recorded every segment's decisions in sequence. (A segment whose own ring
// already dropped entries dropped only entries with at least maxLogEntries
// successors globally, which the single-scheduler ring drops too.)
func MergeLogs(segments ...[]Decision) []Decision {
	total := 0
	for _, seg := range segments {
		total += len(seg)
	}
	if total == 0 {
		return nil
	}
	skip := 0
	if total > maxLogEntries {
		skip = total - maxLogEntries
	}
	out := make([]Decision, 0, total-skip)
	for _, seg := range segments {
		if skip >= len(seg) {
			skip -= len(seg)
			continue
		}
		out = append(out, seg[skip:]...)
		skip = 0
	}
	return out
}
