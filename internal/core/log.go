package core

import (
	"fmt"
	"time"
)

// DecisionKind classifies a scheduling decision.
type DecisionKind int

// Decision kinds recorded by the scheduler.
const (
	DecisionStart DecisionKind = iota
	DecisionShrink
	DecisionExpand
	DecisionEnqueue
	DecisionComplete
	DecisionPreempt
	DecisionCapacity
)

// String returns the decision kind's log label.
func (k DecisionKind) String() string {
	switch k {
	case DecisionStart:
		return "start"
	case DecisionShrink:
		return "shrink"
	case DecisionExpand:
		return "expand"
	case DecisionEnqueue:
		return "enqueue"
	case DecisionComplete:
		return "complete"
	case DecisionPreempt:
		return "preempt"
	case DecisionCapacity:
		return "capacity"
	}
	return fmt.Sprintf("DecisionKind(%d)", int(k))
}

// Decision is one entry in the scheduler's decision log — the audit trail
// of every policy action, with the slot accounting at the time it was made.
type Decision struct {
	At        time.Time
	Kind      DecisionKind
	JobID     string
	Replicas  int // allocation after the decision (0 for enqueue/complete; the new total for capacity)
	FreeSlots int // free slots after the decision
}

// String formats a decision as one log line.
func (d Decision) String() string {
	return fmt.Sprintf("%s %-8s %-12s replicas=%-3d free=%d",
		d.At.Format("15:04:05"), d.Kind, d.JobID, d.Replicas, d.FreeSlots)
}

// maxLogEntries bounds the in-memory decision log; older entries are
// discarded (the operator runs for days).
const maxLogEntries = 100_000

// record appends a per-job decision to the log.
func (s *Scheduler) record(kind DecisionKind, j *Job) {
	if !s.cfg.EnableLog {
		return
	}
	s.appendDecision(Decision{
		At: s.now(), Kind: kind, JobID: j.ID, Replicas: j.Replicas, FreeSlots: s.free,
	})
}

// appendDecision adds one entry, discarding the oldest half at the cap.
func (s *Scheduler) appendDecision(d Decision) {
	if len(s.log) >= maxLogEntries {
		copy(s.log, s.log[len(s.log)/2:])
		s.log = s.log[:len(s.log)-len(s.log)/2]
	}
	s.log = append(s.log, d)
}

// Log returns a copy of the decision log (empty unless Config.EnableLog).
func (s *Scheduler) Log() []Decision {
	return append([]Decision(nil), s.log...)
}
