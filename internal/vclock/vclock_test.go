package vclock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)

func TestVirtualNowAdvance(t *testing.T) {
	v := NewVirtual(epoch)
	if !v.Now().Equal(epoch) {
		t.Fatalf("Now = %v, want %v", v.Now(), epoch)
	}
	v.Advance(90 * time.Second)
	if got := v.Now(); !got.Equal(epoch.Add(90 * time.Second)) {
		t.Fatalf("Now after Advance = %v", got)
	}
}

func TestVirtualTimerFires(t *testing.T) {
	v := NewVirtual(epoch)
	ch := v.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before Advance")
	default:
	}
	if n := v.Advance(9 * time.Second); n != 0 {
		t.Fatalf("fired %d timers early", n)
	}
	if n := v.Advance(1 * time.Second); n != 1 {
		t.Fatalf("fired %d timers, want 1", n)
	}
	got := <-ch
	if !got.Equal(epoch.Add(10 * time.Second)) {
		t.Fatalf("timer delivered %v", got)
	}
}

func TestVirtualTimersFireInOrder(t *testing.T) {
	v := NewVirtual(epoch)
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	delays := []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second}
	for i, d := range delays {
		wg.Add(1)
		go func(i int, ch <-chan time.Time) {
			defer wg.Done()
			at := <-ch
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			_ = at
		}(i, v.After(d))
	}
	// Fire one at a time so goroutine scheduling can't reorder appends.
	for v.AdvanceToNext() {
		time.Sleep(time.Millisecond) // let the receiver run
	}
	wg.Wait()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Fatalf("timers fired in order %v, want [1 2 0]", order)
	}
}

func TestVirtualZeroDurationFiresImmediately(t *testing.T) {
	v := NewVirtual(epoch)
	select {
	case <-v.After(0):
	case <-time.After(time.Second):
		t.Fatal("zero-duration After did not fire")
	}
	select {
	case <-v.After(-time.Second):
	case <-time.After(time.Second):
		t.Fatal("negative After did not fire")
	}
}

func TestVirtualSleepWakes(t *testing.T) {
	v := NewVirtual(epoch)
	done := make(chan struct{})
	go func() {
		v.Sleep(5 * time.Second)
		close(done)
	}()
	// Wait until the sleeper registered its timer.
	for v.PendingTimers() == 0 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(5 * time.Second)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep never returned")
	}
}

func TestAdvanceToNextBatchesEqualDeadlines(t *testing.T) {
	v := NewVirtual(epoch)
	a := v.After(7 * time.Second)
	b := v.After(7 * time.Second)
	if !v.AdvanceToNext() {
		t.Fatal("AdvanceToNext found no timer")
	}
	<-a
	<-b
	if v.PendingTimers() != 0 {
		t.Fatal("timers left after AdvanceToNext")
	}
	if !v.Now().Equal(epoch.Add(7 * time.Second)) {
		t.Fatalf("Now = %v", v.Now())
	}
}

func TestNextDeadline(t *testing.T) {
	v := NewVirtual(epoch)
	if _, ok := v.NextDeadline(); ok {
		t.Fatal("NextDeadline on empty clock reported a timer")
	}
	v.After(42 * time.Second)
	at, ok := v.NextDeadline()
	if !ok || !at.Equal(epoch.Add(42*time.Second)) {
		t.Fatalf("NextDeadline = %v, %v", at, ok)
	}
}

func TestRealClock(t *testing.T) {
	var c Clock = Real{}
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatal("Real.Now is in the past")
	}
	start := time.Now()
	c.Sleep(time.Millisecond)
	if time.Since(start) < time.Millisecond {
		t.Fatal("Real.Sleep returned early")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("Real.After never fired")
	}
}
