// Package vclock provides a clock abstraction with a real implementation and
// a manually driven virtual implementation. The cluster emulation runs on the
// virtual clock so that a 40-minute scheduling experiment (Table 1 "Actual")
// replays deterministically in milliseconds while still exercising every
// timing-dependent code path (rescale-gap enforcement, pod startup latency,
// controller requeue delays).
package vclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the time source used by all components that care about time.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// After returns a channel that delivers the clock time once d has
	// elapsed on this clock.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the system wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// timer is a pending virtual-clock timer.
type timer struct {
	at  time.Time
	ch  chan time.Time
	seq int64 // tie-break so equal deadlines fire FIFO
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// Virtual is a manually advanced Clock. Time only moves when Advance or
// AdvanceToNext is called, which makes emulated experiments deterministic.
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	timers timerHeap
	seq    int64
	// sleepers counts goroutines blocked in Sleep/After; exposed so a
	// driver can detect quiescence before advancing time.
	waiting int
	cond    *sync.Cond
}

// NewVirtual returns a virtual clock starting at the given time.
func NewVirtual(start time.Time) *Virtual {
	v := &Virtual{now: start}
	v.cond = sync.NewCond(&v.mu)
	return v
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After implements Clock. Non-positive durations fire immediately.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- v.now
		return ch
	}
	v.seq++
	heap.Push(&v.timers, &timer{at: v.now.Add(d), ch: ch, seq: v.seq})
	v.cond.Broadcast()
	return ch
}

// Sleep implements Clock. It blocks the caller until the virtual clock is
// advanced past the deadline by another goroutine.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	ch := v.After(d)
	v.mu.Lock()
	v.waiting++
	v.mu.Unlock()
	<-ch
	v.mu.Lock()
	v.waiting--
	v.mu.Unlock()
}

// PendingTimers reports how many timers are waiting to fire.
func (v *Virtual) PendingTimers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.timers)
}

// Sleepers reports how many goroutines are currently blocked in Sleep.
func (v *Virtual) Sleepers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.waiting
}

// Advance moves the clock forward by d, firing every timer whose deadline is
// reached in order. It returns the number of timers fired.
func (v *Virtual) Advance(d time.Duration) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	target := v.now.Add(d)
	fired := 0
	for len(v.timers) > 0 && !v.timers[0].at.After(target) {
		t := heap.Pop(&v.timers).(*timer)
		v.now = t.at
		t.ch <- v.now
		fired++
	}
	v.now = target
	return fired
}

// AdvanceToNext jumps the clock to the next pending timer deadline and fires
// every timer at that instant. It reports whether any timer fired.
func (v *Virtual) AdvanceToNext() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.timers) == 0 {
		return false
	}
	at := v.timers[0].at
	v.now = at
	for len(v.timers) > 0 && v.timers[0].at.Equal(at) {
		t := heap.Pop(&v.timers).(*timer)
		t.ch <- v.now
	}
	return true
}

// NextDeadline returns the deadline of the earliest pending timer and whether
// one exists.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.timers) == 0 {
		return time.Time{}, false
	}
	return v.timers[0].at, true
}
