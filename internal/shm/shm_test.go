package shm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestWriteReadDelete(t *testing.T) {
	s := NewStore(0)
	if err := s.Write("ckpt/0", []byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := s.Read("ckpt/0")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if string(got) != "hello" {
		t.Errorf("Read = %q, want hello", got)
	}
	s.Delete("ckpt/0")
	if _, err := s.Read("ckpt/0"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Read after Delete: err = %v, want ErrNotFound", err)
	}
}

func TestReadReturnsCopy(t *testing.T) {
	s := NewStore(0)
	if err := s.Write("k", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Read("k")
	got[0] = 99
	again, _ := s.Read("k")
	if again[0] != 1 {
		t.Error("Read returned aliased storage")
	}
}

func TestWriteCopiesInput(t *testing.T) {
	s := NewStore(0)
	buf := []byte{1, 2, 3}
	if err := s.Write("k", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99
	got, _ := s.Read("k")
	if got[0] != 1 {
		t.Error("Write aliased caller's buffer")
	}
}

func TestCapacityLimit(t *testing.T) {
	s := NewStore(10)
	if err := s.Write("a", make([]byte, 6)); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if err := s.Write("b", make([]byte, 5)); !errors.Is(err, ErrNoSpace) {
		t.Errorf("over-limit write: err = %v, want ErrNoSpace", err)
	}
	// Replacing a segment only counts the delta.
	if err := s.Write("a", make([]byte, 10)); err != nil {
		t.Errorf("replace within limit: %v", err)
	}
	if s.Used() != 10 {
		t.Errorf("Used = %d, want 10", s.Used())
	}
}

func TestUsedAccounting(t *testing.T) {
	s := NewStore(0)
	if err := s.Write("a", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Write("b", make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 150 {
		t.Fatalf("Used = %d, want 150", s.Used())
	}
	if err := s.Write("a", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 60 {
		t.Fatalf("Used after replace = %d, want 60", s.Used())
	}
	s.Delete("b")
	if s.Used() != 10 {
		t.Fatalf("Used after delete = %d, want 10", s.Used())
	}
	s.Delete("nonexistent") // no-op
	if s.Used() != 10 {
		t.Fatalf("Used after no-op delete = %d, want 10", s.Used())
	}
}

func TestDeletePrefix(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 5; i++ {
		if err := s.Write(fmt.Sprintf("gen1/pe%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Write("gen2/pe0", []byte{9}); err != nil {
		t.Fatal(err)
	}
	if n := s.DeletePrefix("gen1/"); n != 5 {
		t.Errorf("DeletePrefix removed %d, want 5", n)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if s.Used() != 1 {
		t.Errorf("Used = %d, want 1", s.Used())
	}
}

func TestKeysSorted(t *testing.T) {
	s := NewStore(0)
	for _, k := range []string{"c", "a", "b"} {
		if err := s.Write(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Errorf("Keys = %v, want [a b c]", keys)
	}
	if kp := s.KeysPrefix("b"); len(kp) != 1 || kp[0] != "b" {
		t.Errorf("KeysPrefix(b) = %v", kp)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("seg%d", g)
			for i := 0; i < 200; i++ {
				if err := s.Write(key, make([]byte, i%64)); err != nil {
					t.Errorf("Write: %v", err)
					return
				}
				if _, err := s.Read(key); err != nil {
					t.Errorf("Read: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// used must equal the sum of final segment sizes.
	var want int64
	for _, k := range s.Keys() {
		d, err := s.Read(k)
		if err != nil {
			t.Fatal(err)
		}
		want += int64(len(d))
	}
	if s.Used() != want {
		t.Errorf("Used = %d, want %d", s.Used(), want)
	}
}

// Property: Used always equals the sum of stored segment lengths under an
// arbitrary sequence of writes and deletes.
func TestQuickUsedInvariant(t *testing.T) {
	type op struct {
		Key    uint8
		Size   uint8
		Delete bool
	}
	f := func(ops []op) bool {
		s := NewStore(0)
		for _, o := range ops {
			key := fmt.Sprintf("k%d", o.Key%8)
			if o.Delete {
				s.Delete(key)
			} else if err := s.Write(key, make([]byte, o.Size)); err != nil {
				return false
			}
		}
		var want int64
		for _, k := range s.Keys() {
			d, err := s.Read(k)
			if err != nil {
				return false
			}
			want += int64(len(d))
		}
		return s.Used() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
