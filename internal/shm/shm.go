// Package shm emulates the Linux shared-memory segment store that Charm++
// uses for in-memory checkpointing during shrink/expand. The paper mounts a
// memory-backed emptyDir at /dev/shm in each pod; here the equivalent is an
// in-process keyed byte store with per-segment and per-store size accounting,
// plus an optional capacity limit mirroring the pod's shm size limit.
//
// Segments survive runtime restarts (the store outlives runtime incarnations)
// which is exactly the property checkpoint/restart rescaling relies on.
package shm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrNotFound is returned when a requested segment does not exist.
var ErrNotFound = errors.New("shm: segment not found")

// ErrNoSpace is returned when writing a segment would exceed the store limit.
var ErrNoSpace = errors.New("shm: store capacity exceeded")

// Store is a thread-safe in-memory segment store. The zero value is NOT
// usable; call NewStore.
type Store struct {
	mu       sync.RWMutex
	limit    int64 // 0 means unlimited
	used     int64
	segments map[string][]byte
}

// NewStore returns an empty store. limit is the maximum total bytes the store
// may hold (0 = unlimited), mirroring a pod's /dev/shm size.
func NewStore(limit int64) *Store {
	return &Store{limit: limit, segments: make(map[string][]byte)}
}

// Write stores data under key, replacing any previous segment. The data is
// copied. Returns ErrNoSpace if the store limit would be exceeded.
func (s *Store) Write(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := int64(len(s.segments[key]))
	next := s.used - old + int64(len(data))
	if s.limit > 0 && next > s.limit {
		return fmt.Errorf("%w: writing %q (%d bytes) would use %d of %d",
			ErrNoSpace, key, len(data), next, s.limit)
	}
	s.segments[key] = append([]byte(nil), data...)
	s.used = next
	return nil
}

// Read returns a copy of the segment stored under key.
func (s *Store) Read(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.segments[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return append([]byte(nil), data...), nil
}

// Delete removes the segment stored under key. Deleting a missing key is a
// no-op, matching shm_unlink semantics for our purposes.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.used -= int64(len(s.segments[key]))
	delete(s.segments, key)
}

// DeletePrefix removes every segment whose key begins with prefix and
// reports how many were removed. Used to clear a checkpoint generation.
func (s *Store) DeletePrefix(prefix string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k, v := range s.segments {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			s.used -= int64(len(v))
			delete(s.segments, k)
			n++
		}
	}
	return n
}

// Keys returns all segment keys in sorted order.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.segments))
	for k := range s.segments {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// KeysPrefix returns the sorted keys that begin with prefix.
func (s *Store) KeysPrefix(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var keys []string
	for k := range s.segments {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Used reports the total bytes currently stored.
func (s *Store) Used() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.used
}

// Limit reports the store's capacity limit (0 = unlimited).
func (s *Store) Limit() int64 { return s.limit }

// Len reports the number of segments.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.segments)
}
