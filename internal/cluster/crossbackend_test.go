package cluster

import (
	"math"
	"testing"

	"elastichpc/internal/core"
	"elastichpc/internal/sim"
)

// TestCrossBackendAgreement pins the two backends to each other: the same
// small scenario through the discrete-event simulator (sim.RunPolicy) and
// the full k8s+operator emulation (RunExperiment) must complete the same job
// set with the same per-job peak replica counts, and their per-job timing
// metrics must agree within the pod-startup and rescale-protocol overheads
// the DES ignores. This is the guard that keeps federation aggregates —
// which mix metrics computed by either backend — from drifting between
// backends.
func TestCrossBackendAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-backend emulation in -short mode")
	}
	w := sim.RandomWorkload(8, 120, 3)
	for _, p := range []core.Policy{core.Elastic, core.RigidMax} {
		simRes, err := sim.RunPolicy(p, w, 180)
		if err != nil {
			t.Fatalf("%v sim: %v", p, err)
		}
		actRes, err := RunExperiment(DefaultConfig(p), w)
		if err != nil {
			t.Fatalf("%v emulation: %v", p, err)
		}
		simJobs := map[string]sim.JobMetrics{}
		for _, j := range simRes.Jobs {
			simJobs[j.ID] = j
		}
		if len(actRes.Jobs) != len(simRes.Jobs) {
			t.Fatalf("%v: emulation completed %d jobs, sim %d", p, len(actRes.Jobs), len(simRes.Jobs))
		}
		for _, aj := range actRes.Jobs {
			sj, ok := simJobs[aj.ID]
			if !ok {
				t.Errorf("%v: job %s completed in emulation only", p, aj.ID)
				continue
			}
			if aj.Replicas != sj.Replicas {
				t.Errorf("%v: job %s peaked at %d replicas in emulation, %d in sim",
					p, aj.ID, aj.Replicas, sj.Replicas)
			}
			// Timing carries the emulation's pod-startup latency and the
			// asynchronous rescale protocol; hold it to a relative band.
			if rel := math.Abs(aj.CompletionTime-sj.CompletionTime) / sj.CompletionTime; rel > 0.25 {
				t.Errorf("%v: job %s completion %g vs sim %g (%.0f%% apart)",
					p, aj.ID, aj.CompletionTime, sj.CompletionTime, rel*100)
			}
		}
		if rel := math.Abs(actRes.TotalTime-simRes.TotalTime) / simRes.TotalTime; rel > 0.25 {
			t.Errorf("%v: total %g vs sim %g (%.0f%% apart)", p, actRes.TotalTime, simRes.TotalTime, rel*100)
		}
	}
}
