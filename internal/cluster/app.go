package cluster

import (
	"fmt"
	"time"

	"elastichpc/internal/core"
	"elastichpc/internal/k8s"
	"elastichpc/internal/model"
	"elastichpc/internal/operator"
	"elastichpc/internal/sim"
	"elastichpc/internal/workload"
)

// modelApps implements operator.AppRuntime with the calibrated performance
// model: each launched job progresses through its iterations at the modelled
// per-iteration rate, freezes for the four-phase overhead on every rescale,
// and fires a completion callback when the final iteration lands. This
// substitutes for real Charm++ binaries in the emulated EKS runs (the real
// runtime exists in internal/charm and is exercised by Figures 4–6; running
// 40,000-iteration production jobs through it would take the paper's
// wall-clock hours).
type modelApps struct {
	c    *Cluster
	apps map[string]*appState
	// checkpoints holds each job's last periodic-checkpoint iteration
	// (the paper's §3.2.2 fault-tolerance state; survives app restarts).
	checkpoints map[string]float64
}

// appState is one running application.
type appState struct {
	name        string
	grid        int
	steps       int
	ckptPeriod  int
	replicas    int
	itersDone   float64
	lastUpdate  time.Time
	frozenUntil time.Time
	seq         int64
	rescales    int
	overheadSec float64
}

func newModelApps(c *Cluster) *modelApps {
	return &modelApps{c: c, apps: make(map[string]*appState), checkpoints: make(map[string]float64)}
}

// progress credits iterations completed since the last update at the current
// replica count.
func (m *modelApps) progress(a *appState) {
	now := m.c.Loop.Now()
	from := a.lastUpdate
	if a.frozenUntil.After(from) {
		from = a.frozenUntil
	}
	if now.After(from) && a.replicas > 0 {
		iterTime := m.c.cfg.Machine.IterTime(a.grid, a.replicas)
		a.itersDone += now.Sub(from).Seconds() / iterTime
		if a.itersDone > float64(a.steps) {
			a.itersDone = float64(a.steps)
		}
	}
	a.lastUpdate = now
}

// rearm schedules the job's completion callback from its remaining work,
// charging overhead seconds of frozen time first.
func (m *modelApps) rearm(a *appState, overhead float64) {
	a.seq++
	seq := a.seq
	now := m.c.Loop.Now()
	a.frozenUntil = now.Add(time.Duration(overhead * float64(time.Second)))
	remaining := float64(a.steps) - a.itersDone
	iterTime := m.c.cfg.Machine.IterTime(a.grid, a.replicas)
	finish := overhead + remaining*iterTime
	m.c.Loop.At(time.Duration(finish*float64(time.Second)), func() {
		if a.seq != seq {
			return // superseded by a rescale
		}
		m.c.jobDone(a.name)
	})
}

// Launch implements operator.AppRuntime.
func (m *modelApps) Launch(job *operator.CharmJob, nodelist []string) error {
	if len(nodelist) != job.Spec.Replicas {
		return fmt.Errorf("cluster: launch %s with %d of %d workers", job.Name, len(nodelist), job.Spec.Replicas)
	}
	a := &appState{
		name:       job.Name,
		grid:       job.Spec.Workload.Grid,
		steps:      job.Spec.Workload.Steps,
		ckptPeriod: job.Spec.CheckpointPeriod,
		replicas:   job.Spec.Replicas,
		lastUpdate: m.c.Loop.Now(),
	}
	if a.grid <= 0 || a.steps <= 0 {
		return fmt.Errorf("cluster: job %s has no workload", job.Name)
	}
	overhead := 0.0
	if done, ok := m.checkpoints[job.Name]; ok && done > 0 {
		// Restarting after a failure: resume from the checkpoint and
		// pay the restart+restore cost of reading it back.
		a.itersDone = done
		ph := m.c.cfg.Machine.RescaleOverhead(a.grid, a.replicas, a.replicas)
		overhead = ph.Restart + ph.Restore
	}
	if overhead > 0 {
		m.c.overheadArea += overhead * float64(a.replicas)
	}
	if m.c.preempted[job.Name] {
		// The restart pays back a forced preemption: its frozen window
		// is part of what the availability event cost.
		delete(m.c.preempted, job.Name)
		m.c.workLost += overhead * float64(a.replicas)
	}
	m.apps[job.Name] = a
	m.rearm(a, overhead)
	return nil
}

// Shrink implements operator.AppRuntime: the application checkpoints to shm,
// restarts with fewer PEs, and acknowledges; the controller then deletes the
// surplus pods.
func (m *modelApps) Shrink(job *operator.CharmJob, newReplicas int) error {
	return m.rescale(job.Name, newReplicas)
}

// Expand implements operator.AppRuntime.
func (m *modelApps) Expand(job *operator.CharmJob, newReplicas int, nodelist []string) error {
	if len(nodelist) < newReplicas {
		return fmt.Errorf("cluster: expand %s: nodelist has %d of %d workers", job.Name, len(nodelist), newReplicas)
	}
	return m.rescale(job.Name, newReplicas)
}

func (m *modelApps) rescale(name string, to int) error {
	a, ok := m.apps[name]
	if !ok {
		return fmt.Errorf("cluster: app %s not running", name)
	}
	if to == a.replicas {
		return nil
	}
	m.progress(a)
	ph := m.c.cfg.Machine.RescaleOverhead(a.grid, a.replicas, to)
	forced := to < a.replicas && m.c.Mgr.TakeForcedRescale(name)
	a.replicas = to
	a.rescales++
	a.overheadSec += ph.Total()
	m.c.overheadArea += ph.Total() * float64(to)
	if forced {
		// Forced by a capacity loss, not chosen by the policy.
		m.c.workLost += ph.Total() * float64(to)
	}
	m.rearm(a, ph.Total())
	return nil
}

// Stop implements operator.AppRuntime. If periodic checkpointing is enabled
// the last completed checkpoint survives for a later restart. A stop during
// a forced capacity reclaim marks the job preempted and charges the
// progress past its last checkpoint as work the availability event lost —
// unlike the simulator's idealized instant checkpoint, the emulation only
// saves what the §3.2.2 periodic checkpointer actually wrote.
func (m *modelApps) Stop(job *operator.CharmJob) {
	if a, ok := m.apps[job.Name]; ok {
		a.seq++ // cancel any pending completion
		m.progress(a)
		saved := 0.0
		if a.ckptPeriod > 0 {
			period := float64(a.ckptPeriod)
			saved = float64(int(a.itersDone/period)) * period
			m.checkpoints[job.Name] = saved
		}
		if m.c.Mgr.Scheduler().Reclaiming() {
			m.c.preempted[job.Name] = true
			if lost := a.itersDone - saved; lost > 0 && a.replicas > 0 {
				iterTime := m.c.cfg.Machine.IterTime(a.grid, a.replicas)
				m.c.workLost += lost * iterTime * float64(a.replicas)
			}
		}
	}
	delete(m.apps, job.Name)
}

// RunExperiment builds a cluster, submits the workload, runs it to
// completion, and returns the metrics. It is the harness behind Table 1
// "Actual" and Figure 9. It consumes the same workload.Workload the
// discrete-event simulator does, so any scenario generator drives both
// backends.
func RunExperiment(cfg Config, w workload.Workload) (sim.Result, error) {
	res, _, err := RunRecorded(cfg, w)
	return res, err
}

// RunRecorded is RunExperiment plus the scheduler's decision log (nil
// unless Config.LogDecisions) — the cluster backend's entry point for the
// conformance harness.
func RunRecorded(cfg Config, w workload.Workload) (sim.Result, []core.Decision, error) {
	c, err := New(cfg)
	if err != nil {
		return sim.Result{}, nil, err
	}
	specs := model.Specs()
	for _, js := range w.Jobs {
		spec := specs[js.Class]
		maxR := spec.MaxReplicas
		if maxR > cfg.Nodes*cfg.CPUPerNode {
			maxR = cfg.Nodes * cfg.CPUPerNode
		}
		job := &operator.CharmJob{
			ObjectMeta: k8s.ObjectMeta{Name: js.ID},
			Spec: operator.CharmJobSpec{
				MinReplicas:      spec.MinReplicas,
				MaxReplicas:      maxR,
				Priority:         js.Priority,
				CPUPerWorker:     1,
				ShmBytes:         1 << 30,
				Workload:         operator.WorkloadSpec{Grid: spec.Grid, Steps: spec.Steps},
				CheckpointPeriod: cfg.CheckpointPeriod,
			},
		}
		c.Submit(job, time.Duration(js.SubmitAt*float64(time.Second)))
	}
	if err := c.Run(len(w.Jobs), 10_000_000); err != nil {
		return sim.Result{}, nil, err
	}
	return c.Result(), c.Decisions(), nil
}

// Table1Actual runs the fixed Table 1 workload through the full emulation
// for every policy (the paper's "Actual" columns).
func Table1Actual() (map[core.Policy]sim.Result, error) {
	w := sim.Table1Workload()
	out := make(map[core.Policy]sim.Result, 4)
	for _, p := range core.AllPolicies() {
		res, err := RunExperiment(DefaultConfig(p), w)
		if err != nil {
			return nil, fmt.Errorf("policy %v: %w", p, err)
		}
		out[p] = res
	}
	return out, nil
}

// RunGenerator generates one seed of a workload scenario and runs it through
// the full emulation — the cluster-backend twin of generating and handing the
// workload to sim.RunPolicy.
func RunGenerator(cfg Config, g workload.Generator, seed int64) (sim.Result, error) {
	w, err := g.Generate(seed)
	if err != nil {
		return sim.Result{}, err
	}
	return RunExperiment(cfg, w)
}

// RunAvailability generates one seed of a workload scenario and an
// availability profile and runs both through the full emulation — the
// cluster-backend twin of sim.RunPolicyAvailability. The trace gets a
// restore-to-base event past its horizon so a profile ending mid-outage
// cannot strand the backlog, mirroring sim.AvailabilitySweep.
func RunAvailability(cfg Config, g workload.Generator, p workload.AvailabilityProfile, seed int64) (sim.Result, error) {
	w, err := g.Generate(seed)
	if err != nil {
		return sim.Result{}, err
	}
	base := cfg.Nodes * cfg.CPUPerNode
	horizon := sim.AvailabilityHorizon(w)
	tr, err := p.Events(seed, base, horizon)
	if err != nil {
		return sim.Result{}, err
	}
	cfg.Availability = tr.WithRestore(base, horizon)
	return RunExperiment(cfg, w)
}
