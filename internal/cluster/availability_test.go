package cluster

import (
	"testing"

	"elastichpc/internal/core"
	"elastichpc/internal/model"
	"elastichpc/internal/sim"
	"elastichpc/internal/workload"
)

// TestCapacityDropForcesShrinkInEmulation drives a hand-built capacity drop
// through the full k8s+operator stack: the running job must give slots back
// when half the cluster disappears, and get them back on restore.
func TestCapacityDropForcesShrinkInEmulation(t *testing.T) {
	cfg := DefaultConfig(core.Elastic)
	cfg.Availability = workload.AvailabilityTrace{Events: []workload.CapacityEvent{
		{At: 60, Capacity: 32},
		{At: 300, Capacity: 64},
	}}
	w := workload.Workload{Jobs: []workload.JobSpec{
		{ID: "solo", Class: model.XLarge /* min 16, max 64 */, Priority: 3, SubmitAt: 0},
	}}
	res, err := RunExperiment(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacityEvents != 2 {
		t.Errorf("CapacityEvents = %d, want 2", res.CapacityEvents)
	}
	if res.ForcedShrinks < 1 {
		t.Errorf("ForcedShrinks = %d, want >= 1 (the t=60 drop must shrink the 64-replica job)", res.ForcedShrinks)
	}
	// The replica timeline must dip to 32 during the outage and recover.
	tl := res.ReplicaTimelines["solo"]
	sawDip, sawRecover := false, false
	for _, s := range tl {
		if s.At >= 60 && s.At < 300 && s.Replicas == 32 {
			sawDip = true
		}
		if sawDip && s.At >= 300 && s.Replicas > 32 {
			sawRecover = true
		}
	}
	if !sawDip || !sawRecover {
		t.Errorf("replica timeline missed the dip/recovery: dip=%v recover=%v (%+v)", sawDip, sawRecover, tl)
	}
	if res.WorkLostSec <= 0 {
		t.Errorf("WorkLostSec = %v, want > 0 (forced shrink freezes the app)", res.WorkLostSec)
	}
	if res.GoodputFrac <= 0 || res.GoodputFrac >= 1 {
		t.Errorf("GoodputFrac = %v, want in (0,1)", res.GoodputFrac)
	}
}

// TestCapacityReclaimPreemptsAndResumesInEmulation shrinks the cluster below
// the combined minimum of two rigid-width jobs, forcing a checkpoint
// preemption; the restore must bring the victim back and every job must
// still finish.
func TestCapacityReclaimPreemptsAndResumesInEmulation(t *testing.T) {
	cfg := DefaultConfig(core.RigidMax) // rigid: jobs cannot shrink at all
	cfg.CheckpointPeriod = 1000
	cfg.Availability = workload.AvailabilityTrace{Events: []workload.CapacityEvent{
		{At: 30, Capacity: 16},
		{At: 200, Capacity: 64},
	}}
	w := workload.Workload{Jobs: []workload.JobSpec{
		{ID: "keep", Class: model.Medium /* max 16 */, Priority: 5, SubmitAt: 0},
		{ID: "victim", Class: model.Medium, Priority: 1, SubmitAt: 0},
	}}
	res, err := RunExperiment(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requeues < 1 {
		t.Errorf("Requeues = %d, want >= 1 (16 slots cannot hold two 16-wide rigid jobs)", res.Requeues)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("completed %d jobs, want 2", len(res.Jobs))
	}
	for _, jm := range res.Jobs {
		if jm.EndAt <= 0 {
			t.Errorf("job %s never completed: %+v", jm.ID, jm)
		}
	}
}

// TestAvailabilityProfileComparableAcrossBackends runs the same seeded spot
// scenario through the simulator and the emulation: both must complete, both
// must see capacity events, and their utilization/goodput must land in the
// same ballpark — the cross-validation the shared workload+availability
// engine exists for.
func TestAvailabilityProfileComparableAcrossBackends(t *testing.T) {
	gen := workload.Uniform{Jobs: 8, Gap: 90}
	prof := workload.SpotPreemption{MeanGap: 300, Slots: 16, MeanOutage: 240}
	const seed = 2

	cfg := DefaultConfig(core.Elastic)
	cfg.CheckpointPeriod = 1000
	actual, err := RunAvailability(cfg, gen, prof, seed)
	if err != nil {
		t.Fatal(err)
	}

	w, err := gen.Generate(seed)
	if err != nil {
		t.Fatal(err)
	}
	horizon := sim.AvailabilityHorizon(w)
	tr, err := prof.Events(seed, 64, horizon)
	if err != nil {
		t.Fatal(err)
	}
	simres, err := sim.RunPolicyAvailability(core.Elastic, w, 180, tr.WithRestore(64, horizon))
	if err != nil {
		t.Fatal(err)
	}

	if actual.CapacityEvents == 0 || simres.CapacityEvents == 0 {
		t.Fatalf("capacity events actual=%d sim=%d, want both > 0", actual.CapacityEvents, simres.CapacityEvents)
	}
	if ratio := actual.TotalTime / simres.TotalTime; ratio < 0.5 || ratio > 2.0 {
		t.Errorf("total time diverged: actual %.0f vs sim %.0f", actual.TotalTime, simres.TotalTime)
	}
	if diff := actual.Utilization - simres.Utilization; diff < -0.35 || diff > 0.35 {
		t.Errorf("utilization diverged: actual %.3f vs sim %.3f", actual.Utilization, simres.Utilization)
	}
}
