package cluster

import (
	"encoding/json"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"elastichpc/internal/core"
	"elastichpc/internal/sim"
)

// TestResultIsIdempotent is the regression test for the tail fold-in bug:
// Result used to fold the open utilization interval into the accumulator and
// advance utilLast on every call, so a second call inflated Utilization and
// GoodputFrac. Two consecutive calls must now be deep-equal.
func TestResultIsIdempotent(t *testing.T) {
	c, err := New(DefaultConfig(core.Elastic))
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(smallJob("a", 3, 2, 8, 512, 100), 0)
	c.Submit(smallJob("b", 5, 2, 8, 512, 100), 10*time.Second)
	if err := c.Run(2, 1_000_000); err != nil {
		t.Fatal(err)
	}
	first := c.Result()
	second := c.Result()
	if !reflect.DeepEqual(first, second) {
		t.Errorf("Result is not idempotent:\nfirst:  %+v\nsecond: %+v", first, second)
	}
	if first.Utilization <= 0 || first.Utilization > 1 {
		t.Errorf("utilization %g out of range", first.Utilization)
	}
}

// TestResultJobsSortedDeterministically is the regression test for the map
// iteration bug: Jobs was built by ranging over the done map, so its order —
// and any JSON diff of -json reports — varied run to run. It must be sorted
// by (SubmitAt, ID), and two separate emulations of the same workload must
// serialize identically.
func TestResultJobsSortedDeterministically(t *testing.T) {
	w := sim.RandomWorkload(8, 60, 5)
	run := func() sim.Result {
		res, err := RunExperiment(DefaultConfig(core.Elastic), w)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if !sort.SliceIsSorted(res.Jobs, func(a, b int) bool {
		if res.Jobs[a].SubmitAt != res.Jobs[b].SubmitAt {
			return res.Jobs[a].SubmitAt < res.Jobs[b].SubmitAt
		}
		return res.Jobs[a].ID < res.Jobs[b].ID
	}) {
		t.Errorf("Jobs not sorted by (SubmitAt, ID): %+v", res.Jobs)
	}
	j1, err := json.Marshal(res.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(run().Jobs)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Errorf("two emulations of the same workload serialize differently:\n%s\n%s", j1, j2)
	}
}

// TestRunSurfacesCapacityEventError is the regression test for the panic
// bug: a capacity/submit failure inside an event-loop callback used to panic
// across the library boundary. An invalid capacity event must instead
// surface as an error from Run.
func TestRunSurfacesCapacityEventError(t *testing.T) {
	c, err := New(DefaultConfig(core.Elastic))
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(smallJob("a", 3, 2, 8, 512, 40000), 0)
	// Capacity 0 passes no trace validation (SetCapacityAt is unchecked by
	// design) and is rejected by the scheduler at fire time, while the job
	// is still running.
	c.SetCapacityAt(5*time.Second, 0)
	err = c.Run(1, 1_000_000)
	if err == nil {
		t.Fatal("Run succeeded through an invalid capacity event")
	}
	if !strings.Contains(err.Error(), "capacity event") {
		t.Errorf("error %q does not name the capacity event", err)
	}
	if c.Err() == nil {
		t.Error("Err() lost the captured callback error")
	}
}

// TestRunSurfacesSubmitError covers the submission half of the panic bug: a
// duplicate job name is rejected by the manager inside the loop callback and
// must come back from Run as an error.
func TestRunSurfacesSubmitError(t *testing.T) {
	c, err := New(DefaultConfig(core.Elastic))
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(smallJob("dup", 3, 2, 8, 512, 100), 0)
	c.Submit(smallJob("dup", 3, 2, 8, 512, 100), time.Second)
	err = c.Run(2, 1_000_000)
	if err == nil {
		t.Fatal("Run succeeded through a duplicate submission")
	}
	if !strings.Contains(err.Error(), "dup") {
		t.Errorf("error %q does not name the job", err)
	}
}
