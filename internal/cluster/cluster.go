package cluster

import (
	"fmt"
	"math"
	"sort"
	"time"

	"elastichpc/internal/core"
	"elastichpc/internal/k8s"
	"elastichpc/internal/model"
	"elastichpc/internal/operator"
	"elastichpc/internal/sim"
	"elastichpc/internal/workload"
)

// Config parameterizes the emulated cluster.
type Config struct {
	// Nodes and CPUPerNode describe the node group (4 × c6g.4xlarge with
	// 16 vCPUs in the paper).
	Nodes      int
	CPUPerNode int
	Policy     core.Policy
	// RescaleGap is T_rescale_gap.
	RescaleGap time.Duration
	// Machine calibrates the modelled application performance.
	Machine model.Machine
	// PodStartupDelay is the kubelet bind→Running latency.
	PodStartupDelay time.Duration
	// Availability is the capacity timeline applied to the emulation —
	// the same workload.AvailabilityTrace the discrete-event simulator
	// consumes, so one profile drives both backends. Nodes×CPUPerNode is
	// the base capacity; extra nodes are provisioned up front when the
	// trace bursts above it. At equal virtual-clock instants, capacity
	// events fire before submissions (both are scheduled in New/Submit
	// registration order), mirroring the simulator's documented ordering.
	Availability workload.AvailabilityTrace
	// CheckpointPeriod (iterations) enables periodic checkpointing for
	// every submitted job, bounding the work a forced preemption loses
	// (§3.2.2). 0 means preempted jobs restart from scratch.
	CheckpointPeriod int
	// LogDecisions enables the policy scheduler's decision log
	// (core.Config.EnableLog), retrievable via Decisions after a run —
	// the cluster backend's hook into the conformance harness.
	LogDecisions bool
}

// DefaultConfig matches the paper's cluster.
func DefaultConfig(p core.Policy) Config {
	return Config{
		Nodes: 4, CPUPerNode: 16, Policy: p,
		RescaleGap:      180 * time.Second,
		Machine:         model.DefaultMachine(),
		PodStartupDelay: 2 * time.Second,
	}
}

// Cluster is one emulated cluster instance.
type Cluster struct {
	cfg      Config
	Loop     *k8s.EventLoop
	Store    *k8s.Store
	PodSched *k8s.PodScheduler
	Kubelet  *k8s.Kubelet
	Ctrl     *operator.Controller
	Mgr      *operator.Manager

	apps  *modelApps
	start time.Time

	// Utilization accounting over bound worker pods.
	usedCPU  int
	utilTL   []sim.UtilSample
	utilArea float64
	utilLast time.Time

	// Per-job replica timelines (Figure 9b).
	replicaTL map[string][]sim.ReplicaSample

	done map[string]bool

	// Availability accounting, mirroring the simulator's: capSteps is
	// the applied capacity curve (for the delivered-capacity utilization
	// denominator), preempted marks jobs stopped by a reclaim so their
	// restart overhead is attributed to the availability event, workLost
	// and overheadArea are replica-seconds (forced-only and total).
	capSteps     []sim.UtilSample
	capEvents    int
	preempted    map[string]bool
	workLost     float64
	overheadArea float64

	// runErr is the first error raised inside an event-loop callback
	// (capacity events, submissions, completion plumbing). Callbacks cannot
	// return errors across the loop boundary and panicking would cross the
	// library boundary, so the error is captured here and surfaced by Run.
	runErr error
}

// New builds a cluster with its control plane.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes < 1 || cfg.CPUPerNode < 1 {
		return nil, fmt.Errorf("cluster: bad node group %dx%d", cfg.Nodes, cfg.CPUPerNode)
	}
	if err := cfg.Availability.Validate(); err != nil {
		return nil, err
	}
	start := time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)
	loop := k8s.NewEventLoop(start)
	store := k8s.NewStore(loop)
	c := &Cluster{
		cfg: cfg, Loop: loop, Store: store, start: start,
		utilLast:  start,
		replicaTL: make(map[string][]sim.ReplicaSample),
		done:      make(map[string]bool),
		preempted: make(map[string]bool),
	}
	c.PodSched = k8s.NewPodScheduler(loop, store)
	c.Kubelet = k8s.NewKubelet(loop, store, cfg.PodStartupDelay)
	c.apps = newModelApps(c)
	c.Ctrl = operator.NewController(loop, store, c.apps)

	mgr, err := operator.NewManager(loop, store, c.Ctrl, core.Config{
		Policy:     cfg.Policy,
		Capacity:   cfg.Nodes * cfg.CPUPerNode,
		RescaleGap: cfg.RescaleGap,
		EnableLog:  cfg.LogDecisions,
	})
	if err != nil {
		return nil, err
	}
	c.Mgr = mgr

	// Provision nodes to the availability trace's burst ceiling: the
	// policy scheduler's time-varying Capacity is what enforces the
	// availability curve, so nodes beyond the current capacity simply
	// stay idle until a burst event hands them out.
	nodes := cfg.Nodes
	if maxCap := cfg.Availability.MaxCapacity(cfg.Nodes * cfg.CPUPerNode); maxCap > cfg.Nodes*cfg.CPUPerNode {
		nodes = int(math.Ceil(float64(maxCap) / float64(cfg.CPUPerNode)))
	}
	for i := 0; i < nodes; i++ {
		node := &k8s.Node{
			ObjectMeta:  k8s.ObjectMeta{Name: fmt.Sprintf("node-%d", i)},
			CapacityCPU: cfg.CPUPerNode,
		}
		if err := store.Create(node); err != nil {
			return nil, err
		}
	}

	// Utilization: integrate bound worker-pod CPU over time.
	store.Subscribe(k8s.KindPod, func(ev k8s.Event) { c.onPodEvent(ev) })
	// Replica timelines: sample on job status updates.
	store.Subscribe(k8s.KindCharmJob, func(ev k8s.Event) { c.onJobEvent(ev) })

	loop.RunUntilIdle()

	// Schedule the availability events — after the control plane settles
	// (RunUntilIdle drains every armed timer) but before any Submit call,
	// so at equal virtual-clock instants a capacity event's timer fires
	// ahead of a submission's, matching the simulator's documented
	// capacity-before-submission ordering.
	for _, ev := range cfg.Availability.Events {
		c.scheduleCapacity(ev.At, ev.Capacity)
	}
	return c, nil
}

// fail records the first error raised inside an event-loop callback; Run
// surfaces it. Later errors are dropped — they are almost always cascade
// damage from the first one.
func (c *Cluster) fail(err error) {
	if c.runErr == nil {
		c.runErr = err
	}
}

// Err returns the first error captured from an event-loop callback, or nil.
func (c *Cluster) Err() error { return c.runErr }

// Decisions returns the policy scheduler's decision log, oldest first
// (empty unless Config.LogDecisions).
func (c *Cluster) Decisions() []core.Decision {
	return c.Mgr.Scheduler().Log()
}

// SetCapacityAt schedules a cluster-capacity change at the given offset from
// start — the same path availability-trace events take. Unlike the trace
// handed to New, the change is not pre-validated; an invalid capacity (or a
// reclaim the actuator refuses) surfaces as an error from Run.
func (c *Cluster) SetCapacityAt(at time.Duration, capacity int) {
	c.scheduleCapacity(at.Seconds(), capacity)
}

// scheduleCapacity arms one capacity event at atSec seconds from start,
// keeping the trace's exact float timestamp for the delivered-capacity
// integral.
func (c *Cluster) scheduleCapacity(atSec float64, capacity int) {
	c.Loop.At(time.Duration(atSec*float64(time.Second)), func() {
		if err := c.Mgr.SetCapacity(capacity); err != nil {
			c.fail(fmt.Errorf("cluster: capacity event at t=%.1f: %w", atSec, err))
			return
		}
		c.capEvents++
		c.capSteps = append(c.capSteps, sim.UtilSample{At: atSec, Used: capacity})
	})
}

func (c *Cluster) onPodEvent(ev k8s.Event) {
	pod := ev.Object.(*k8s.Pod)
	if pod.Labels["role"] != "worker" {
		return
	}
	// Recompute used CPU from the store (events may coalesce).
	used := 0
	for _, p := range c.Store.Pods(map[string]string{"role": "worker"}) {
		if p.Spec.NodeName != "" && p.Status.Phase != k8s.PodSucceeded && p.Status.Phase != k8s.PodFailed {
			used += p.Spec.CPU
		}
	}
	if used == c.usedCPU {
		return
	}
	now := c.Loop.Now()
	c.utilArea += float64(c.usedCPU) * now.Sub(c.utilLast).Seconds()
	c.utilLast = now
	c.usedCPU = used
	c.utilTL = append(c.utilTL, sim.UtilSample{At: now.Sub(c.start).Seconds(), Used: used})
}

func (c *Cluster) onJobEvent(ev k8s.Event) {
	if ev.Type == k8s.Deleted {
		return
	}
	job := ev.Object.(*operator.CharmJob)
	tl := c.replicaTL[job.Name]
	cur := job.Status.LaunchedReplicas
	if job.Status.Phase == operator.JobSucceeded {
		cur = 0
	}
	if len(tl) > 0 && tl[len(tl)-1].Replicas == cur {
		return
	}
	c.replicaTL[job.Name] = append(tl, sim.ReplicaSample{
		At: c.Loop.Now().Sub(c.start).Seconds(), Replicas: cur,
	})
}

// Submit schedules a CharmJob submission at the given offset from start. A
// submission the manager rejects (duplicate name, invalid spec) surfaces as
// an error from Run.
func (c *Cluster) Submit(job *operator.CharmJob, at time.Duration) {
	c.Loop.At(at, func() {
		if err := c.Mgr.Submit(job); err != nil {
			c.fail(fmt.Errorf("cluster: submit %s: %w", job.Name, err))
		}
	})
}

// FailNode schedules a simulated node crash at the given offset: every pod
// bound to the node fails, triggering the operator's §3.2.2 restart path
// for the affected jobs. The node itself recovers immediately (a reboot),
// so cluster capacity is unchanged.
func (c *Cluster) FailNode(node string, at time.Duration) {
	c.Loop.At(at, func() {
		k8s.FailPodsOnNode(c.Store, node)
	})
}

// jobDone is called by the modelled application when a job's final
// iteration completes.
func (c *Cluster) jobDone(name string) {
	if c.done[name] {
		return
	}
	c.done[name] = true
	if err := c.Mgr.JobFinished(name); err != nil {
		c.fail(fmt.Errorf("cluster: finish %s: %w", name, err))
	}
}

// Run drives the emulation until every submitted job completes, a callback
// error is captured, or no progress is possible. maxSteps bounds runaway
// reconcile loops.
func (c *Cluster) Run(expectJobs int, maxSteps int) error {
	steps := 0
	ok := c.Loop.RunUntil(func() bool {
		steps++
		if steps > maxSteps || c.runErr != nil {
			return true
		}
		return len(c.done) >= expectJobs
	})
	if c.runErr != nil {
		return c.runErr
	}
	if !ok || len(c.done) < expectJobs {
		return fmt.Errorf("cluster: only %d of %d jobs completed after %d steps",
			len(c.done), expectJobs, steps)
	}
	return nil
}

// Result computes the experiment metrics in the paper's four-metric form.
// It is side-effect-free and idempotent: the open tail of the utilization
// integral is folded into locals, so consecutive calls return deep-equal
// results, and Jobs is sorted by (SubmitAt, ID) — matching the simulator's
// submission ordering — so JSON reports diff cleanly run to run.
func (c *Cluster) Result() sim.Result {
	res := sim.Result{
		Policy:           c.cfg.Policy,
		UtilTimeline:     c.utilTL,
		ReplicaTimelines: c.replicaTL,
	}
	capacity := float64(c.cfg.Nodes * c.cfg.CPUPerNode)
	for name := range c.done {
		cj, ok := c.Mgr.CoreJob(name)
		if !ok {
			continue
		}
		m := sim.JobMetrics{
			ID:             name,
			Priority:       cj.Priority,
			SubmitAt:       cj.SubmitTime.Sub(c.start).Seconds(),
			StartAt:        cj.StartTime.Sub(c.start).Seconds(),
			EndAt:          cj.EndTime.Sub(c.start).Seconds(),
			Rescales:       cj.Rescales,
			ResponseTime:   cj.ResponseTime().Seconds(),
			CompletionTime: cj.CompletionTime().Seconds(),
		}
		for _, s := range c.replicaTL[name] {
			if s.Replicas > m.Replicas {
				m.Replicas = s.Replicas
			}
		}
		res.Jobs = append(res.Jobs, m)
	}
	sort.Slice(res.Jobs, func(a, b int) bool {
		if res.Jobs[a].SubmitAt != res.Jobs[b].SubmitAt {
			return res.Jobs[a].SubmitAt < res.Jobs[b].SubmitAt
		}
		return res.Jobs[a].ID < res.Jobs[b].ID
	})
	// Accumulate the aggregates over the sorted slice, not the done map:
	// float addition is order-sensitive, so a map-order walk would leave
	// the weighted means nondeterministic in the last ulp.
	var firstStart, lastEnd float64
	first := true
	var wSum, wResp, wComp float64
	for _, m := range res.Jobs {
		if first || m.StartAt < firstStart {
			firstStart, first = m.StartAt, false
		}
		if m.EndAt > lastEnd {
			lastEnd = m.EndAt
		}
		w := float64(m.Priority)
		wSum += w
		wResp += w * m.ResponseTime
		wComp += w * m.CompletionTime
	}
	res.TotalTime = lastEnd - firstStart
	res.FirstStart = firstStart
	res.LastEnd = lastEnd
	res.WeightSum = wSum
	res.EndCapacity = c.Mgr.Scheduler().Capacity()
	// The emulation's accounting window can extend marginally past the last
	// job completion: teardown pod events advance utilLast a hair beyond
	// lastEnd. Used/DeliveredSlotSec both cover [0, end] — self-consistent
	// with each other and with Utilization, slightly wider than the
	// simulator's documented [0, LastEnd] window.
	end := c.utilLast.Sub(c.start).Seconds()
	if lastEnd > end {
		end = lastEnd
	}
	// Fold the open tail interval [utilLast, now] into a local instead of
	// mutating the accumulator: Result must not change what a later Result
	// (or a still-running experiment) observes.
	utilArea := c.utilArea + float64(c.usedCPU)*c.Loop.Now().Sub(c.utilLast).Seconds()
	res.UsedSlotSec = utilArea
	if end > 0 {
		if len(c.capSteps) == 0 {
			res.DeliveredSlotSec = capacity * end
		} else {
			// Time-varying capacity: divide by what was deliverable,
			// through the exact integral the simulator uses.
			res.DeliveredSlotSec = sim.CapacityArea(capacity, c.capSteps, end)
		}
		res.Utilization = utilArea / res.DeliveredSlotSec
	}
	if wSum > 0 {
		res.WeightedResponse = wResp / wSum
		res.WeightedCompletion = wComp / wSum
	}
	cs := c.Mgr.Scheduler().CapacityStats()
	res.CapacityEvents = c.capEvents
	res.ForcedShrinks = cs.ForcedShrinks
	res.Requeues = cs.Requeues
	res.WorkLostSec = c.workLost
	res.GoodputFrac = 1
	if utilArea > 0 {
		res.GoodputFrac = 1 - c.overheadArea/utilArea
	}
	return res
}
