// Package cluster is the full-stack emulation of the paper's EKS
// experiments (§4.3.2): real k8s substrate (store, pod scheduler, kubelet),
// the real Charm operator and elastic policy, and a modelled Charm++
// application — all driven deterministically on a virtual clock. It
// produces the "Actual" column of Table 1 and the Figure 9
// utilization/replica timelines, and its results cross-validate the
// independent discrete-event simulator (internal/sim), the same way the
// paper compares actual vs simulation.
//
// The emulation consumes the same workload.Workload and
// workload.AvailabilityTrace values as the simulator. Capacity events fire
// as virtual-clock timers (registered before submissions, so they win ties,
// matching the simulator's documented ordering) and flow through
// operator.Manager.SetCapacity into the shared policy scheduler; forced
// preemptions run the §3.2.2 checkpoint machinery, so — unlike the
// simulator's idealized instant checkpoint — a preempted job here only
// resumes from what the periodic checkpointer actually saved
// (Config.CheckpointPeriod).
package cluster
