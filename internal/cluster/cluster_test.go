package cluster

import (
	"math"
	"testing"
	"time"

	"elastichpc/internal/core"
	"elastichpc/internal/k8s"
	"elastichpc/internal/model"
	"elastichpc/internal/operator"
	"elastichpc/internal/sim"
)

func smallJob(name string, prio, min, max, grid, steps int) *operator.CharmJob {
	return &operator.CharmJob{
		ObjectMeta: k8s.ObjectMeta{Name: name},
		Spec: operator.CharmJobSpec{
			MinReplicas: min, MaxReplicas: max, Priority: prio,
			CPUPerWorker: 1, ShmBytes: 1 << 20,
			Workload: operator.WorkloadSpec{Grid: grid, Steps: steps},
		},
	}
}

func TestSingleJobRunsToCompletion(t *testing.T) {
	cfg := DefaultConfig(core.Elastic)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(smallJob("j0", 3, 2, 8, 512, 100), 0)
	if err := c.Run(1, 1_000_000); err != nil {
		t.Fatal(err)
	}
	res := c.Result()
	if len(res.Jobs) != 1 {
		t.Fatalf("%d jobs in result", len(res.Jobs))
	}
	j := res.Jobs[0]
	if j.Replicas != 8 {
		t.Errorf("job ran at %d replicas, want 8 (empty cluster, max)", j.Replicas)
	}
	if j.CompletionTime <= 0 {
		t.Errorf("completion = %g", j.CompletionTime)
	}
	// The runtime should be roughly steps × iterTime(grid, 8) plus pod
	// startup; allow generous slack for startup latency.
	want := cfg.Machine.JobRuntime(model.Spec{Grid: 512, Steps: 100}, 8)
	if j.CompletionTime < want {
		t.Errorf("completion %g < pure compute %g", j.CompletionTime, want)
	}
	if j.CompletionTime > want+30 {
		t.Errorf("completion %g way beyond compute+startup %g", j.CompletionTime, want+30)
	}
}

func TestPodsCreatedAndCleanedUp(t *testing.T) {
	c, err := New(DefaultConfig(core.Elastic))
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(smallJob("j0", 3, 2, 4, 512, 50), 0)
	// Run until the job has running pods.
	c.Loop.RunUntil(func() bool {
		return len(c.Store.Pods(map[string]string{"charmjob": "j0", "role": "worker"})) == 4
	})
	if got := len(c.Store.Pods(map[string]string{"charmjob": "j0"})); got != 5 {
		t.Errorf("%d pods while running, want 4 workers + 1 launcher", got)
	}
	if err := c.Run(1, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Store.Pods(map[string]string{"charmjob": "j0"})); got != 0 {
		t.Errorf("%d pods left after completion", got)
	}
	obj, ok := c.Store.Get(k8s.KindCharmJob, "j0")
	if !ok || obj.(*operator.CharmJob).Status.Phase != operator.JobSucceeded {
		t.Error("job not marked Succeeded")
	}
}

func TestNodelistWrittenAndSized(t *testing.T) {
	c, err := New(DefaultConfig(core.Elastic))
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(smallJob("j0", 3, 2, 4, 512, 400), 0)
	c.Loop.RunUntil(func() bool {
		obj, ok := c.Store.Get(k8s.KindConfigMap, operator.NodelistName("j0"))
		if !ok {
			return false
		}
		cm := obj.(*k8s.ConfigMap)
		return len(cm.Data["nodelist"]) > 0
	})
	obj, ok := c.Store.Get(k8s.KindConfigMap, operator.NodelistName("j0"))
	if !ok {
		t.Fatal("nodelist ConfigMap missing")
	}
	hosts := obj.(*k8s.ConfigMap).Data["nodelist"]
	count := 1
	for _, ch := range hosts {
		if ch == '\n' {
			count++
		}
	}
	if count != 4 {
		t.Errorf("nodelist has %d hosts: %q", count, hosts)
	}
}

func TestElasticShrinksForHigherPriority(t *testing.T) {
	cfg := DefaultConfig(core.Elastic)
	cfg.RescaleGap = 30 * time.Second
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Low-priority job fills the cluster (max 64, runs ~2 min); the
	// high-priority job arrives once the gap has expired, needing min 32.
	c.Submit(smallJob("low", 1, 8, 64, 4096, 40000), 0)
	c.Submit(smallJob("high", 5, 32, 48, 2048, 2000), 40*time.Second)
	if err := c.Run(2, 2_000_000); err != nil {
		t.Fatal(err)
	}
	res := c.Result()
	byID := map[string]sim.JobMetrics{}
	for _, j := range res.Jobs {
		byID[j.ID] = j
	}
	if byID["low"].Rescales == 0 {
		t.Error("low-priority job was never rescaled")
	}
	// The high-priority job must not wait for low to finish.
	if byID["high"].ResponseTime >= byID["low"].CompletionTime {
		t.Errorf("high waited %gs; low completed at %gs", byID["high"].ResponseTime, byID["low"].CompletionTime)
	}
	// Replica timeline for the shrunk job has multiple levels.
	tl := res.ReplicaTimelines["low"]
	levels := map[int]bool{}
	for _, s := range tl {
		levels[s.Replicas] = true
	}
	if len(levels) < 3 { // 64 → shrunk → 0
		t.Errorf("low job timeline has %d levels: %v", len(levels), tl)
	}
}

func TestMoldableNeverRescalesInEmulation(t *testing.T) {
	cfg := DefaultConfig(core.Moldable)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(smallJob("a", 1, 8, 64, 2048, 800), 0)
	c.Submit(smallJob("b", 5, 8, 64, 2048, 800), 30*time.Second)
	if err := c.Run(2, 2_000_000); err != nil {
		t.Fatal(err)
	}
	for _, j := range c.Result().Jobs {
		if j.Rescales != 0 {
			t.Errorf("moldable job %s rescaled %d times", j.ID, j.Rescales)
		}
	}
}

func TestUtilizationWithinBounds(t *testing.T) {
	w := sim.RandomWorkload(6, 60, 3)
	res, err := RunExperiment(DefaultConfig(core.Elastic), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("utilization = %g", res.Utilization)
	}
	for _, s := range res.UtilTimeline {
		if s.Used < 0 || s.Used > 64 {
			t.Errorf("util sample %d slots", s.Used)
		}
	}
}

func TestTable1ActualOrderingHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 1 emulation in -short mode")
	}
	results, err := Table1Actual()
	if err != nil {
		t.Fatal(err)
	}
	e := results[core.Elastic]
	for _, p := range []core.Policy{core.RigidMin, core.RigidMax, core.Moldable} {
		r := results[p]
		if e.TotalTime >= r.TotalTime {
			t.Errorf("elastic total %g >= %v %g", e.TotalTime, p, r.TotalTime)
		}
		if e.Utilization <= r.Utilization {
			t.Errorf("elastic util %g <= %v %g", e.Utilization, p, r.Utilization)
		}
	}
	if results[core.RigidMin].Utilization >= e.Utilization {
		t.Error("min_replicas utilization should be below elastic")
	}
}

func TestActualAgreesWithSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation in -short mode")
	}
	// The emulation and the DES are independent implementations; their
	// total times for the same workload/policy should agree within the
	// pod-startup and protocol overheads the DES ignores (paper §4.3.1:
	// "We do not consider the overhead added by the operator or by
	// Kubernetes to start up the pods").
	w := sim.Table1Workload()
	for _, p := range core.AllPolicies() {
		simRes, err := sim.RunPolicy(p, w, 180)
		if err != nil {
			t.Fatal(err)
		}
		actRes, err := RunExperiment(DefaultConfig(p), w)
		if err != nil {
			t.Fatalf("policy %v: %v", p, err)
		}
		rel := math.Abs(actRes.TotalTime-simRes.TotalTime) / simRes.TotalTime
		if rel > 0.25 {
			t.Errorf("%v: actual total %g vs sim %g (%.0f%% apart)", p, actRes.TotalTime, simRes.TotalTime, rel*100)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Nodes: 0, CPUPerNode: 16}); err == nil {
		t.Error("accepted zero nodes")
	}
}
