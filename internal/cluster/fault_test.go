package cluster

import (
	"testing"
	"time"

	"elastichpc/internal/core"
	"elastichpc/internal/k8s"
	"elastichpc/internal/operator"
)

// run2 builds a cluster, submits one job, optionally fails a node mid-run,
// and returns (completion time, restarts).
func runWithFailure(t *testing.T, ckptPeriod int, fail bool) (float64, int) {
	t.Helper()
	c, err := New(DefaultConfig(core.Elastic))
	if err != nil {
		t.Fatal(err)
	}
	job := smallJob("victim", 3, 8, 16, 4096, 20000)
	job.Spec.CheckpointPeriod = ckptPeriod
	c.Submit(job, 0)
	if fail {
		// The job runs ~4–8 minutes; crash a node two minutes in. The
		// scheduler packs all 16 workers onto node-0 via affinity.
		c.FailNode("node-0", 120*time.Second)
	}
	if err := c.Run(1, 2_000_000); err != nil {
		t.Fatal(err)
	}
	obj, ok := c.Store.Get(k8s.KindCharmJob, "victim")
	if !ok {
		t.Fatal("job object missing")
	}
	return c.Result().Jobs[0].CompletionTime, obj.(*operator.CharmJob).Status.Restarts
}

func TestNodeFailureRestartsFromCheckpoint(t *testing.T) {
	clean, restarts := runWithFailure(t, 1000, false)
	if restarts != 0 {
		t.Fatalf("clean run restarted %d times", restarts)
	}
	withCkpt, restartsCkpt := runWithFailure(t, 1000, true)
	if restartsCkpt != 1 {
		t.Fatalf("failed run restarted %d times, want 1", restartsCkpt)
	}
	if withCkpt <= clean {
		t.Errorf("failure did not extend completion: %g <= %g", withCkpt, clean)
	}
	// Restarting from a checkpoint must be cheaper than restarting from
	// scratch.
	fromScratch, restartsScratch := runWithFailure(t, 0, true)
	if restartsScratch != 1 {
		t.Fatalf("scratch run restarted %d times, want 1", restartsScratch)
	}
	if withCkpt >= fromScratch {
		t.Errorf("checkpointed restart (%g) not faster than from-scratch (%g)", withCkpt, fromScratch)
	}
	// And from-scratch roughly doubles the work done before the crash.
	if fromScratch <= clean+100 {
		t.Errorf("from-scratch restart too cheap: %g vs clean %g", fromScratch, clean)
	}
}

func TestFailureOfOneJobDoesNotKillOthers(t *testing.T) {
	c, err := New(DefaultConfig(core.Elastic))
	if err != nil {
		t.Fatal(err)
	}
	a := smallJob("a", 3, 8, 16, 4096, 10000)
	a.Spec.CheckpointPeriod = 1000
	b := smallJob("b", 3, 8, 16, 4096, 10000)
	b.Spec.CheckpointPeriod = 1000
	c.Submit(a, 0)
	c.Submit(b, 5*time.Second)
	// Fail whichever node hosts pods at t=60s; at least one job restarts,
	// but both must complete.
	c.FailNode("node-0", 60*time.Second)
	if err := c.Run(2, 2_000_000); err != nil {
		t.Fatal(err)
	}
	res := c.Result()
	if len(res.Jobs) != 2 {
		t.Fatalf("%d jobs completed", len(res.Jobs))
	}
	totalRestarts := 0
	for _, name := range []string{"a", "b"} {
		obj, ok := c.Store.Get(k8s.KindCharmJob, name)
		if !ok {
			t.Fatalf("job %s missing", name)
		}
		totalRestarts += obj.(*operator.CharmJob).Status.Restarts
	}
	if totalRestarts == 0 {
		t.Error("node failure did not restart any job")
	}
}
