package cluster

import (
	"testing"

	"elastichpc/internal/core"
	"elastichpc/internal/sim"
	"elastichpc/internal/workload"
)

// Every workload generator must drive both execution backends: the
// discrete-event simulator and the full-stack cluster emulation consume the
// same workload.Workload.
func TestAllGeneratorsRunThroughBothBackends(t *testing.T) {
	dir := t.TempDir()
	seedWL, err := (workload.Uniform{Jobs: 3, Gap: 60}).Generate(2)
	if err != nil {
		t.Fatal(err)
	}
	tracePath := dir + "/scenario.csv"
	if err := workload.SaveFile(tracePath, seedWL, ""); err != nil {
		t.Fatal(err)
	}

	gens := []workload.Generator{
		workload.Uniform{Jobs: 4, Gap: 60},
		workload.Poisson{Jobs: 4, MeanGap: 60},
		workload.Burst{Waves: 2, PerWave: 2, WaveGap: 240},
		workload.Diurnal{Jobs: 4, Period: 600, PeakGap: 30, OffPeakGap: 180},
		workload.Trace{Path: tracePath},
	}
	for _, g := range gens {
		w, err := g.Generate(1)
		if err != nil {
			t.Fatalf("%s: generate: %v", g.Name(), err)
		}
		simRes, err := sim.RunPolicy(core.Elastic, w, 180)
		if err != nil {
			t.Fatalf("%s: sim backend: %v", g.Name(), err)
		}
		if simRes.TotalTime <= 0 || len(simRes.Jobs) != len(w.Jobs) {
			t.Errorf("%s: sim degenerate result %+v", g.Name(), simRes)
		}
		actRes, err := RunGenerator(DefaultConfig(core.Elastic), g, 1)
		if err != nil {
			t.Fatalf("%s: cluster backend: %v", g.Name(), err)
		}
		if actRes.TotalTime <= 0 || len(actRes.Jobs) != len(w.Jobs) {
			t.Errorf("%s: cluster degenerate result %+v", g.Name(), actRes)
		}
		if actRes.Utilization <= 0 || actRes.Utilization > 1 {
			t.Errorf("%s: cluster utilization %g", g.Name(), actRes.Utilization)
		}
	}
}

func TestRunGeneratorPropagatesError(t *testing.T) {
	_, err := RunGenerator(DefaultConfig(core.Elastic), workload.Trace{}, 1)
	if err == nil {
		t.Error("RunGenerator swallowed a generator error")
	}
}
