// Jacobi2D live-rescale demo: run the heat-equation solver on the real
// message-driven runtime, then shrink and expand it mid-run through the CCS
// control socket — the paper's Figure 6 scenario, end to end, including the
// external-controller path.
//
//	go run ./examples/jacobi2d
package main

import (
	"fmt"
	"log"
	"time"

	"elastichpc"
)

func main() {
	const (
		pes   = 8
		grid  = 512
		iters = 60
	)
	rt, err := elastichpc.NewRuntime(elastichpc.RuntimeConfig{PEs: pes})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Shutdown()

	// 4 chares per PE: overdecomposition enables load balancing and
	// rescaling (paper §2.1).
	app, err := elastichpc.NewJacobi2D(rt, grid, 8, 4)
	if err != nil {
		log.Fatal(err)
	}
	app.LBPeriod = 10

	// Expose the CCS endpoint an external scheduler would signal.
	ccsHandle, err := rt.ServeCCS(elastichpc.CCSOptions{Addr: "127.0.0.1:0", Status: app.Status})
	if err != nil {
		log.Fatal(err)
	}
	defer ccsHandle.Close()
	fmt.Printf("solver running on %d PEs, CCS endpoint at %s\n", pes, ccsHandle.Addr())

	// External controller: shrink to half, later expand back.
	go func() {
		client, err := elastichpc.DialCCS(ccsHandle.Addr(), time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		if err := client.Shrink(pes / 2); err != nil {
			log.Fatalf("shrink: %v", err)
		}
		st, err := client.Query()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("controller: shrink acknowledged, app now on %d PEs at iteration %d\n",
			st.NumPEs, st.Iteration)
		if err := client.Expand(pes, nil); err != nil {
			log.Fatalf("expand: %v", err)
		}
		fmt.Printf("controller: expand acknowledged\n")
	}()

	res, err := app.Run(iters)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d iterations, final residual %.3e\n", len(res.Iterations), res.FinalValue)
	for _, ev := range res.Rescales {
		s := ev.Stats
		fmt.Printf("rescale %d->%d at iter %d: lb=%v ckpt=%v restart=%v restore=%v total=%v\n",
			ev.FromPEs, ev.ToPEs, ev.Iter,
			s.LoadBalance.Round(time.Microsecond), s.Checkpoint.Round(time.Microsecond),
			s.Restart.Round(time.Microsecond), s.Restore.Round(time.Microsecond),
			s.Total.Round(time.Microsecond))
	}
	// Per-10-iteration timing like Figure 6a.
	fmt.Println("\niter  PEs  time/10 iters")
	var acc time.Duration
	for i, it := range res.Iterations {
		acc += it.Elapsed
		if (i+1)%10 == 0 {
			fmt.Printf("%4d  %3d  %v\n", i+1, it.PEs, acc.Round(time.Microsecond))
			acc = 0
		}
	}
}
