// Quickstart: simulate a random 16-job workload under all four scheduling
// policies and print the paper's four metrics for each — the fastest way to
// see the elastic scheduler's advantage.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"elastichpc"
)

func main() {
	// 16 jobs drawn from the paper's four size classes, priorities 1–5,
	// submitted 90 seconds apart (the Table 1 configuration; seed 7 is the
	// repository's pinned Table 1 workload).
	workload := elastichpc.RandomWorkload(16, 90, 7)

	fmt.Println("Policy comparison: 16 jobs, 90s submission gap, T_rescale_gap = 180s")
	fmt.Printf("%-14s %12s %12s %16s %18s\n",
		"scheduler", "total (s)", "utilization", "w.response (s)", "w.completion (s)")
	for _, policy := range elastichpc.AllPolicies() {
		res, err := elastichpc.Simulate(policy, workload, elastichpc.WithRescaleGap(180))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %12.0f %11.1f%% %16.1f %18.1f\n",
			policy, res.TotalTime, 100*res.Utilization,
			res.WeightedResponse, res.WeightedCompletion)
	}

	// The same workload through the full Kubernetes emulation (operator,
	// pod scheduler, kubelet, CCS protocol) for the elastic policy.
	res, err := elastichpc.Emulate(elastichpc.DefaultClusterConfig(elastichpc.Elastic), workload)
	if err != nil {
		log.Fatal(err)
	}
	rescales := 0
	for _, j := range res.Jobs {
		rescales += j.Rescales
	}
	fmt.Printf("\nFull k8s emulation (elastic): total %.0f s, utilization %.1f%%, %d rescale operations\n",
		res.TotalTime, 100*res.Utilization, rescales)
}
