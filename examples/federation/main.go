// Command federation is a three-act walkthrough of the multi-cluster
// meta-scheduler: one bursty workload routed across a fleet of member
// clusters, first round-robin on a homogeneous fleet, then on a skewed
// (heterogeneous) fleet where blind dealing falls apart, then with the
// least-loaded and priority-aware routes that repair it. It prints the
// fleet-wide metrics next to each member's own result, showing how the
// aggregates are exact (integrals and weight sums, not means of means).
package main

import (
	"fmt"
	"log"

	hpc "elastichpc"
)

func run(title string, cfg hpc.FederationConfig, w hpc.Workload) hpc.FederationResult {
	res, err := hpc.Federate(cfg, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n— %s —\n", title)
	fmt.Printf("fleet: total %.0fs  util %.1f%%  w.resp %.1fs  w.compl %.1fs  imbalance %.1f%%\n",
		res.TotalTime, 100*res.Utilization, res.WeightedResponse, res.WeightedCompletion, 100*res.Imbalance)
	for i, m := range res.Members {
		fmt.Printf("  cluster%d: %3d jobs  util %5.1f%%  total %6.0fs\n",
			i, res.JobsPerMember[i], 100*m.Utilization, m.TotalTime)
	}
	return res
}

func main() {
	// One flash-crowd workload: 8 waves of 24 simultaneous submissions.
	gen := hpc.BurstScenario{Waves: 8, PerWave: 24, WaveGap: 1800}
	w, err := gen.Generate(42)
	if err != nil {
		log.Fatal(err)
	}
	base := hpc.SimConfig{Policy: hpc.Elastic, Capacity: 64, RescaleGap: 180, Machine: hpc.DefaultMachine()}

	// Act 1: a homogeneous 4-cluster fleet. Round-robin dealing is fine
	// when every member looks the same.
	run("act 1: homogeneous fleet, round-robin",
		hpc.FederationConfig{Members: hpc.UniformFederation(base, 4), Route: hpc.RouteRoundRobin}, w)

	// Act 2: the same deal on a skewed fleet (64/96/128/160 slots).
	// Round-robin ignores capacity, so the small cluster drowns while the
	// big one idles — watch the imbalance.
	rr := run("act 2: skewed fleet, round-robin",
		hpc.FederationConfig{Members: hpc.SkewedFederation(base, 4, 0.5), Route: hpc.RouteRoundRobin}, w)

	// Act 3: the least-loaded route books each job against the member with
	// the lowest queued min-PE demand per slot, so the big clusters soak up
	// proportionally more of every wave.
	ll := run("act 3: skewed fleet, least-loaded",
		hpc.FederationConfig{Members: hpc.SkewedFederation(base, 4, 0.5), Route: hpc.RouteLeastLoaded}, w)
	fmt.Printf("\nimbalance %.1f%% → %.1f%%; fleet completion %.1fs → %.1fs\n",
		100*rr.Imbalance, 100*ll.Imbalance, rr.WeightedCompletion, ll.WeightedCompletion)

	// Coda: priority-aware routing keeps the fast lane clear — compare the
	// weighted response of high-priority jobs under both routes by reading
	// the per-member results back.
	pa := run("coda: skewed fleet, priority-aware",
		hpc.FederationConfig{Members: hpc.SkewedFederation(base, 4, 0.5), Route: hpc.RoutePriority}, w)
	fmt.Printf("\npriority-aware w.resp %.1fs (round-robin %.1fs)\n", pa.WeightedResponse, rr.WeightedResponse)
}
