// Priority-burst demo: a low-priority job saturates the emulated cluster,
// then a burst of high-priority jobs arrives. Under the elastic policy the
// running job is shrunk to make room (paper §3.2.1's motivating scenario);
// under the moldable policy the burst must wait. The demo runs both through
// the full Kubernetes emulation and compares response times.
//
//	go run ./examples/priorityburst
package main

import (
	"fmt"
	"log"
	"time"

	"elastichpc"
	"elastichpc/internal/k8s"
	"elastichpc/internal/operator"
)

func main() {
	for _, policy := range []elastichpc.Policy{elastichpc.Moldable, elastichpc.Elastic} {
		fmt.Printf("=== %s policy ===\n", policy)
		run(policy)
		fmt.Println()
	}
}

func run(policy elastichpc.Policy) {
	cfg := elastichpc.DefaultClusterConfig(policy)
	cfg.RescaleGap = 60 * time.Second
	c, err := elastichpc.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A background job that would happily use the whole cluster.
	c.Submit(&operator.CharmJob{
		ObjectMeta: k8s.ObjectMeta{Name: "background"},
		Spec: operator.CharmJobSpec{
			MinReplicas: 8, MaxReplicas: 64, Priority: 1,
			CPUPerWorker: 1, ShmBytes: 1 << 30,
			Workload: operator.WorkloadSpec{Grid: 8192, Steps: 20000},
		},
	}, 0)

	// A burst of three rigid high-priority jobs 30 seconds in, while the
	// background job holds the whole cluster. Only the elastic policy can
	// make room by shrinking the running job.
	for i := 0; i < 3; i++ {
		c.Submit(&operator.CharmJob{
			ObjectMeta: k8s.ObjectMeta{Name: fmt.Sprintf("urgent-%d", i)},
			Spec: operator.CharmJobSpec{
				MinReplicas: 16, MaxReplicas: 16, Priority: 5,
				CPUPerWorker: 1, ShmBytes: 1 << 30,
				Workload: operator.WorkloadSpec{Grid: 2048, Steps: 8000},
			},
		}, 30*time.Second+time.Duration(i)*10*time.Second)
	}

	if err := c.Run(4, 5_000_000); err != nil {
		log.Fatal(err)
	}
	res := c.Result()
	for _, j := range res.Jobs {
		fmt.Printf("  %-12s prio %d  response %7.1fs  completion %8.1fs  peak %2d replicas  %d rescales\n",
			j.ID, j.Priority, j.ResponseTime, j.CompletionTime, j.Replicas, j.Rescales)
	}
	fmt.Printf("  cluster: total %.0fs, utilization %.1f%%\n", res.TotalTime, 100*res.Utilization)
}
