// LeanMD strong-scaling demo: run the Lennard-Jones molecular dynamics
// mini-app (paper §4.1) at several PE counts and print the time per step —
// a small-scale Figure 4b.
//
//	go run ./examples/leanmd
package main

import (
	"fmt"
	"log"

	"elastichpc"
)

func main() {
	const (
		atomsPerCell = 48
		steps        = 10
		seed         = 2025
	)
	fmt.Println("LeanMD strong scaling (4x4x4 cells, 48 atoms/cell, Lennard-Jones)")
	fmt.Printf("%6s %14s %10s\n", "PEs", "time/step", "speedup")

	var base float64
	for _, pes := range []int{1, 2, 4, 8} {
		rt, err := elastichpc.NewRuntime(elastichpc.RuntimeConfig{PEs: pes})
		if err != nil {
			log.Fatal(err)
		}
		app, err := elastichpc.NewLeanMD(rt, 4, 4, 4, atomsPerCell, seed)
		if err != nil {
			log.Fatal(err)
		}
		res, err := app.Run(steps)
		if err != nil {
			log.Fatal(err)
		}
		rt.Shutdown()

		t := res.TimePerIteration().Seconds()
		if base == 0 {
			base = t
		}
		fmt.Printf("%6d %12.2fms %9.2fx   (kinetic energy %.3f)\n",
			pes, t*1e3, base/t, res.FinalValue)
	}
	fmt.Println("\nLarger cell grids scale further; compute is O(atoms²) per cell pair,")
	fmt.Println("so LeanMD is compute-bound and scales well (paper Fig. 4b).")
}
