// Scenarios: a walkthrough of the workload-scenario engine — generate every
// built-in arrival pattern, sweep them all across the four policies on a
// parallel worker pool, save one as a shareable trace, and replay the trace
// through both the discrete-event simulator and the full cluster emulation.
//
//	go run ./examples/scenarios
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"elastichpc"
)

func main() {
	// 1. The built-in scenarios. Each generator is deterministic per seed:
	//    the same seed always yields the same workload, so experiments are
	//    reproducible and parallel sweeps are bit-identical to sequential.
	fmt.Println("Built-in workload scenarios (seed 7):")
	for _, gen := range elastichpc.DefaultScenarios() {
		w, err := gen.Generate(7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %2d jobs over %6.0f s  (first gap %.0f s)\n",
			gen.Name(), len(w.Jobs), w.Span(), firstGap(w))
	}

	// 2. Scenario sweep: every scenario × every policy × several seeds,
	//    fanned out over all CPUs (workers = 0). Pass workers = 1 for the
	//    sequential reference path — the results are identical bit for bit.
	const seeds = 3
	start := time.Now()
	results, err := elastichpc.ScenarioSweep(elastichpc.DefaultScenarios(), seeds, 180, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nScenario sweep (%d seeds, parallel, %v):\n", seeds, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  %-8s %-14s %12s %12s\n", "scenario", "scheduler", "total (s)", "utilization")
	for _, sr := range results {
		for _, p := range elastichpc.AllPolicies() {
			avg := sr.ByPolicy[p]
			fmt.Printf("  %-8s %-14s %12.0f %11.1f%%\n", sr.Name, p, avg.TotalTime, 100*avg.Utilization)
		}
	}

	// 3. Traces: any workload can be saved (JSON, or CSV by extension) and
	//    replayed later — on another machine, in another harness.
	burst := elastichpc.BurstScenario{Waves: 3, PerWave: 4, WaveGap: 300}
	w, err := burst.Generate(42)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "scenarios")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "burst.csv")
	if err := elastichpc.SaveWorkload(path, w, "burst scenario, seed 42"); err != nil {
		log.Fatal(err)
	}
	replayed, err := elastichpc.LoadWorkload(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSaved and replayed %s: %d jobs round-tripped\n", filepath.Base(path), len(replayed.Jobs))

	// 4. One workload, two backends: the trace drives the discrete-event
	//    simulator and the full k8s+operator emulation interchangeably.
	trace, err := elastichpc.Scenario("trace", path)
	if err != nil {
		log.Fatal(err)
	}
	simRes, err := elastichpc.Simulate(elastichpc.Elastic, replayed, elastichpc.WithRescaleGap(180))
	if err != nil {
		log.Fatal(err)
	}
	actRes, err := elastichpc.EmulateScenario(elastichpc.DefaultClusterConfig(elastichpc.Elastic), trace, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Elastic policy on the trace: simulated total %.0f s, emulated total %.0f s\n",
		simRes.TotalTime, actRes.TotalTime)
}

// firstGap is the gap between the first two submissions (0 for bursts).
func firstGap(w elastichpc.Workload) float64 {
	if len(w.Jobs) < 2 {
		return 0
	}
	return w.Jobs[1].SubmitAt - w.Jobs[0].SubmitAt
}
