// Fault-tolerance demo (paper §3.2.2): a job runs on the emulated cluster
// with periodic checkpointing enabled; a node crashes mid-run; the operator
// restarts the job from its last checkpoint ("launch with the extra restart
// parameter"). The demo compares completion times with checkpointing on and
// off, and shows the same mechanism on the real runtime via
// charm.CheckpointTo / RestoreFrom.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"time"

	"elastichpc"
	"elastichpc/internal/k8s"
	"elastichpc/internal/operator"
)

func main() {
	fmt.Println("Node failure at t=120s; job needs ~6 minutes of compute.")
	clean := run(0, false)
	fmt.Printf("  no failure:                 completed in %6.0f s\n", clean)
	scratch := run(0, true)
	fmt.Printf("  failure, no checkpoints:    completed in %6.0f s (restarted from scratch)\n", scratch)
	ckpt := run(1000, true)
	fmt.Printf("  failure, ckpt every 1000it: completed in %6.0f s (resumed from checkpoint)\n", ckpt)
	fmt.Printf("\ncheckpointing recovered %.0f s of lost work\n", scratch-ckpt)
}

// run executes one job on a fresh emulated cluster and returns its
// completion time in seconds.
func run(ckptPeriod int, fail bool) float64 {
	c, err := elastichpc.NewCluster(elastichpc.DefaultClusterConfig(elastichpc.Elastic))
	if err != nil {
		log.Fatal(err)
	}
	job := &operator.CharmJob{
		ObjectMeta: k8s.ObjectMeta{Name: "sim-job"},
		Spec: operator.CharmJobSpec{
			MinReplicas: 8, MaxReplicas: 16, Priority: 3,
			CPUPerWorker: 1, ShmBytes: 1 << 30,
			Workload:         operator.WorkloadSpec{Grid: 4096, Steps: 20000},
			CheckpointPeriod: ckptPeriod,
		},
	}
	c.Submit(job, 0)
	if fail {
		c.FailNode("node-0", 120*time.Second)
	}
	if err := c.Run(1, 2_000_000); err != nil {
		log.Fatal(err)
	}
	return c.Result().Jobs[0].CompletionTime
}
