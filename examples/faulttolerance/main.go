// Fault-tolerance walkthrough (paper §3.2.2 + the cluster-availability
// engine). Three acts:
//
//  1. Node crash + checkpoint/restart: a job runs on the emulated cluster
//     with periodic checkpointing enabled; a node crashes mid-run; the
//     operator restarts the job from its last checkpoint ("launch with the
//     extra restart parameter"). Compares completion times with
//     checkpointing on and off.
//
//  2. Spot preemptions through the simulator: the same seeded
//     spot-preemption capacity profile is replayed under every scheduling
//     policy. The elastic policy survives most capacity losses by shrinking
//     in place; the rigid baselines can only be checkpoint-requeued, losing
//     queue position and restart time.
//
//  3. The same profile through the full k8s emulation, showing the two
//     backends agree — and that the emulation charges real checkpoint
//     granularity (work since the last periodic checkpoint is lost).
//
// See examples/faulttolerance/README.md for a guided tour of the output.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"time"

	"elastichpc"
	"elastichpc/internal/k8s"
	"elastichpc/internal/operator"
)

func main() {
	fmt.Println("=== Act 1: node crash, checkpoint/restart (emulated EKS) ===")
	fmt.Println("Node failure at t=120s; job needs ~6 minutes of compute.")
	clean := run(0, false)
	fmt.Printf("  no failure:                 completed in %6.0f s\n", clean)
	scratch := run(0, true)
	fmt.Printf("  failure, no checkpoints:    completed in %6.0f s (restarted from scratch)\n", scratch)
	ckpt := run(1000, true)
	fmt.Printf("  failure, ckpt every 1000it: completed in %6.0f s (resumed from checkpoint)\n", ckpt)
	fmt.Printf("\ncheckpointing recovered %.0f s of lost work\n\n", scratch-ckpt)

	spotSimulated()
	spotEmulated()
}

// run executes one job on a fresh emulated cluster and returns its
// completion time in seconds.
func run(ckptPeriod int, fail bool) float64 {
	c, err := elastichpc.NewCluster(elastichpc.DefaultClusterConfig(elastichpc.Elastic))
	if err != nil {
		log.Fatal(err)
	}
	job := &operator.CharmJob{
		ObjectMeta: k8s.ObjectMeta{Name: "sim-job"},
		Spec: operator.CharmJobSpec{
			MinReplicas: 8, MaxReplicas: 16, Priority: 3,
			CPUPerWorker: 1, ShmBytes: 1 << 30,
			Workload:         operator.WorkloadSpec{Grid: 4096, Steps: 20000},
			CheckpointPeriod: ckptPeriod,
		},
	}
	c.Submit(job, 0)
	if fail {
		c.FailNode("node-0", 120*time.Second)
	}
	if err := c.Run(1, 2_000_000); err != nil {
		log.Fatal(err)
	}
	return c.Result().Jobs[0].CompletionTime
}

// spotProfile is the shared availability scenario: a spot reclaim roughly
// every 8 minutes taking a 16-slot node away for ~5 minutes.
func spotProfile() elastichpc.AvailabilityProfile {
	return elastichpc.SpotPreemptionProfile{MeanGap: 480, Slots: 16, MeanOutage: 300}
}

const seed = 7

// spotSimulated replays the seeded spot scenario under every policy in the
// discrete-event simulator.
func spotSimulated() {
	fmt.Println("=== Act 2: spot preemptions, every policy (DES simulator) ===")
	gen := elastichpc.UniformScenario{Jobs: 16, Gap: 90}
	w, err := gen.Generate(seed)
	if err != nil {
		log.Fatal(err)
	}
	horizon := w.Span() + 4*3600
	tr, err := spotProfile().Events(seed, 64, horizon)
	if err != nil {
		log.Fatal(err)
	}
	// Restore to base past the horizon, like every other availability
	// entry point: a trace ending mid-outage would pin the cluster small
	// forever and strand rigid jobs.
	tr = tr.WithRestore(64, horizon)
	fmt.Printf("16 uniform jobs, %d capacity events (seed %d)\n", len(tr.Events), seed)
	fmt.Printf("%-14s %10s %9s %9s %9s %12s\n",
		"Scheduler", "Total (s)", "Goodput", "Shrinks", "Requeues", "Lost (r·s)")
	for _, p := range elastichpc.AllPolicies() {
		res, err := elastichpc.Simulate(p, w, elastichpc.WithRescaleGap(180), elastichpc.WithAvailability(tr))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10.0f %8.2f%% %9d %9d %12.1f\n",
			p, res.TotalTime, 100*res.GoodputFrac, res.ForcedShrinks, res.Requeues, res.WorkLostSec)
	}
	fmt.Println("\nThe elastic policy absorbs reclaims by shrinking (Shrinks column);")
	fmt.Println("rigid policies can only be checkpoint-requeued (Requeues column).")
	fmt.Println()
}

// spotEmulated runs the same scenario through the full k8s emulation.
func spotEmulated() {
	fmt.Println("=== Act 3: the same scenario through the k8s emulation ===")
	gen := elastichpc.UniformScenario{Jobs: 16, Gap: 90}
	fmt.Printf("%-14s %10s %9s %9s %9s %12s\n",
		"Scheduler", "Total (s)", "Goodput", "Shrinks", "Requeues", "Lost (r·s)")
	for _, p := range []elastichpc.Policy{elastichpc.RigidMax, elastichpc.Elastic} {
		cfg := elastichpc.DefaultClusterConfig(p)
		cfg.CheckpointPeriod = 1000
		res, err := elastichpc.EmulateAvailability(cfg, gen, spotProfile(), seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10.0f %8.2f%% %9d %9d %12.1f\n",
			p, res.TotalTime, 100*res.GoodputFrac, res.ForcedShrinks, res.Requeues, res.WorkLostSec)
	}
	fmt.Println("\nUnlike the simulator's idealized checkpoints, the emulation loses the")
	fmt.Println("work since the last periodic checkpoint — the Lost column includes it.")
}
